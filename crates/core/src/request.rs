//! The solve-request API boundary: a self-describing problem statement
//! ([`SolveRequest`]) and its answer ([`SolveResult`]).
//!
//! Everything upstream of the engines — the CLI, the benchmark drivers
//! and the solve server — ultimately asks the same question: *given this
//! fitness landscape and these error rates, what is the stationary
//! distribution?* This module gives that question one typed, validated,
//! **content-addressable** form:
//!
//! * [`LandscapeSpec`] describes a landscape by construction recipe
//!   (kind + parameters) instead of by trait object, so a request can be
//!   hashed, compared, shipped over a wire and rebuilt bit-identically
//!   on the other side.
//! * [`SolveRequest`] adds the error-rate grid, eigensolver method,
//!   tolerance and scheduling hints. [`SolveRequest::cache_key`] derives
//!   the FNV-1a content address of each `(landscape, ν, p, method, tol)`
//!   point — the key of the serving layer's result cache — and
//!   [`SolveRequest::group_key`] the coalescing identity that requests
//!   differing *only in `p`* share.
//! * [`SolveRequest::run_in`] answers the whole grid in **one** batched
//!   block power iteration (per-`p` mutation diagonals as columns of a
//!   single [`QSweep`]-driven operator, the same factorisation as
//!   [`crate::threshold::scan_full_sweep`]) with every working buffer
//!   drawn from a caller-owned [`Workspace`] — a warmed pool serves
//!   repeated same-shape requests without touching the allocator.
//!
//! Scheduling hints ([`SolveRequest::scheduling`]) deliberately do
//! **not** enter the cache key: they steer where and how fast a result
//! is computed, while the key addresses *what* is computed — any result
//! filed under a key satisfies that key's problem to its tolerance.
//!
//! # Warm-start continuation
//!
//! With [`Scheduling::warm_start`] enabled (the default), a batched
//! [`Method::Power`] sweep solves its grid in **continuation order**
//! instead of cold-starting every column: the grid endpoints solve
//! first, then each bisection generation seeds its columns by quadratic
//! Lagrange interpolation over the three nearest already-converged
//! neighbours — neighbouring error rates have nearly identical dominant
//! eigenvectors, so late generations start within a few residual decades
//! of convergence. A serving layer can push externally converged
//! eigenvectors in via [`SolveRequest::run_seeded_in`] ([`StartSeed`]),
//! which join the ladder as pre-converged anchor points.
//!
//! **Determinism contract**: a warm-started solve converges to the same
//! residual tolerance as a cold one but is *not bit-identical* to it.
//! Repeat runs of the same request (same seeds) are still deterministic;
//! only the cold-vs-warm comparison differs. Callers that need
//! bit-reproducible fresh computations opt out via
//! `scheduling.warm_start = false`, which is excluded from
//! [`SolveRequest::cache_key`] like every other scheduling hint.

use std::sync::Arc;

use crate::checkpoint::Fnv64;
use crate::power::{block_power_iteration_in, BlockPowerOutcome, PowerOptions};
use crate::result::{Quasispecies, SolveStats, WarmStartInfo};
use crate::solver::{solve, Engine, Method, SolveError, SolverConfig};
use crate::workspace::Workspace;
use qs_landscape::{ErrorClass, Landscape, Nk, Random, SinglePeak, Tabulated};
use qs_matvec::{LinearOperator, QSweep};

/// A fitness landscape described by its construction recipe.
///
/// Unlike a `Box<dyn Landscape>`, a spec can be validated without
/// panicking, hashed into a content address, and rebuilt exactly —
/// including the seeded kinds, whose pseudo-random tables are a pure
/// function of `(ν, parameters, seed)`.
#[derive(Debug, Clone, PartialEq)]
pub enum LandscapeSpec {
    /// Single master sequence of fitness `f0` over a flat background
    /// `f_rest` (the paper's canonical threshold landscape).
    SinglePeak {
        /// Chain length.
        nu: u32,
        /// Master-sequence fitness.
        f0: f64,
        /// Background fitness.
        f_rest: f64,
    },
    /// Seeded random landscape: master `c`, background `c/2 ± σ`.
    Random {
        /// Chain length.
        nu: u32,
        /// Master-sequence fitness.
        c: f64,
        /// Background half-width, in `(0, c/2)`.
        sigma: f64,
        /// PRNG seed; equal seeds rebuild identical tables.
        seed: u64,
    },
    /// Kauffman NK landscape with `k` epistatic neighbours per site.
    Nk {
        /// Chain length.
        nu: u32,
        /// Epistatic neighbours per site (`k < ν`, `k ≤ 24`).
        k: u32,
        /// PRNG seed; equal seeds rebuild identical tables.
        seed: u64,
    },
    /// Error-class landscape: fitness depends only on Hamming distance
    /// from the master, via the `ν+1` class values `phi`.
    ErrorClass {
        /// Chain length.
        nu: u32,
        /// Per-class fitness, `phi[k]` for Hamming class `k`.
        phi: Vec<f64>,
    },
    /// Fully tabulated fitness values, one per sequence (`2^ν` entries).
    Tabulated {
        /// Fitness table; length must be a power of two `≥ 2`.
        fitness: Vec<f64>,
    },
}

/// `InvalidConfig` shorthand for spec validation.
fn invalid(parameter: &'static str, detail: String) -> SolveError {
    SolveError::InvalidConfig { parameter, detail }
}

impl LandscapeSpec {
    /// Stable kind label (the CLI's `--landscape` vocabulary).
    pub fn kind(&self) -> &'static str {
        match self {
            LandscapeSpec::SinglePeak { .. } => "single-peak",
            LandscapeSpec::Random { .. } => "random",
            LandscapeSpec::Nk { .. } => "nk",
            LandscapeSpec::ErrorClass { .. } => "error-class",
            LandscapeSpec::Tabulated { .. } => "tabulated",
        }
    }

    /// Chain length `ν` the built landscape will report.
    pub fn nu(&self) -> u32 {
        match self {
            LandscapeSpec::SinglePeak { nu, .. }
            | LandscapeSpec::Random { nu, .. }
            | LandscapeSpec::Nk { nu, .. }
            | LandscapeSpec::ErrorClass { nu, .. } => *nu,
            LandscapeSpec::Tabulated { fitness } => fitness.len().trailing_zeros(),
        }
    }

    /// Check every parameter the constructors would otherwise `assert!`
    /// on, as typed errors — a malformed spec from an untrusted source
    /// (a wire request) must never panic the process.
    pub fn validate(&self) -> Result<(), SolveError> {
        let nu = self.nu();
        if !(1..=qs_bitseq::MAX_CHAIN_LENGTH).contains(&nu) {
            return Err(invalid(
                "nu",
                format!(
                    "chain length must lie in 1..={}, got {nu}",
                    qs_bitseq::MAX_CHAIN_LENGTH
                ),
            ));
        }
        match self {
            LandscapeSpec::SinglePeak { f0, f_rest, .. } => {
                for (name, v) in [("f0", *f0), ("f_rest", *f_rest)] {
                    if !(v.is_finite() && v > 0.0) {
                        return Err(invalid(
                            "landscape",
                            format!("{name} must be finite and positive, got {v}"),
                        ));
                    }
                }
            }
            LandscapeSpec::Random { c, sigma, .. } => {
                if !(c.is_finite() && *c > 0.0) {
                    return Err(invalid(
                        "landscape",
                        format!("c must be finite and positive, got {c}"),
                    ));
                }
                if !(sigma.is_finite() && *sigma > 0.0 && *sigma < c / 2.0) {
                    return Err(invalid(
                        "landscape",
                        format!("sigma must lie in (0, c/2), got {sigma}"),
                    ));
                }
            }
            LandscapeSpec::Nk { nu, k, .. } => {
                if *k >= *nu || *k > 24 {
                    return Err(invalid(
                        "landscape",
                        format!("NK requires k < ν and k ≤ 24, got k = {k} at ν = {nu}"),
                    ));
                }
            }
            LandscapeSpec::ErrorClass { nu, phi } => {
                if phi.len() != *nu as usize + 1 {
                    return Err(invalid(
                        "landscape",
                        format!("phi must have ν+1 = {} entries, got {}", nu + 1, phi.len()),
                    ));
                }
                if let Some(bad) = phi.iter().find(|f| !(f.is_finite() && **f > 0.0)) {
                    return Err(invalid(
                        "landscape",
                        format!("class fitness values must be finite and positive, found {bad}"),
                    ));
                }
            }
            LandscapeSpec::Tabulated { fitness } => {
                if !fitness.len().is_power_of_two() || fitness.len() < 2 {
                    return Err(invalid(
                        "landscape",
                        format!(
                            "fitness table length must be 2^ν with ν ≥ 1, got {}",
                            fitness.len()
                        ),
                    ));
                }
                if let Some(bad) = fitness.iter().find(|f| !(f.is_finite() && **f > 0.0)) {
                    return Err(invalid(
                        "landscape",
                        format!("fitness values must be finite and positive, found {bad}"),
                    ));
                }
            }
        }
        Ok(())
    }

    /// Build the landscape this spec describes.
    pub fn build(&self) -> Result<Box<dyn Landscape>, SolveError> {
        self.validate()?;
        Ok(match self {
            LandscapeSpec::SinglePeak { nu, f0, f_rest } => {
                Box::new(SinglePeak::new(*nu, *f0, *f_rest))
            }
            LandscapeSpec::Random { nu, c, sigma, seed } => {
                Box::new(Random::new(*nu, *c, *sigma, *seed))
            }
            LandscapeSpec::Nk { nu, k, seed } => Box::new(Nk::new(*nu, *k, *seed)),
            LandscapeSpec::ErrorClass { nu, phi } => Box::new(ErrorClass::new(*nu, phi.clone())),
            LandscapeSpec::Tabulated { fitness } => Box::new(Tabulated::new(fitness.clone())),
        })
    }

    /// The FNV-1a content address of the landscape recipe alone — the
    /// landscape half of a warm-start cache key (see
    /// [`SolveRequest::warm_key`]).
    pub fn content_hash(&self) -> u64 {
        let mut h = Fnv64::new();
        self.hash_into(&mut h);
        h.finish()
    }

    /// Fold the spec into `h`: a kind tag, `ν`, then every parameter at
    /// exact bits. Seeded kinds hash `(parameters, seed)` rather than the
    /// expanded table — the table is a pure function of them.
    fn hash_into(&self, h: &mut Fnv64) {
        h.write_u64(self.nu() as u64);
        match self {
            LandscapeSpec::SinglePeak { f0, f_rest, .. } => {
                h.write_u64(0);
                h.write_f64(*f0);
                h.write_f64(*f_rest);
            }
            LandscapeSpec::Random { c, sigma, seed, .. } => {
                h.write_u64(1);
                h.write_f64(*c);
                h.write_f64(*sigma);
                h.write_u64(*seed);
            }
            LandscapeSpec::Nk { k, seed, .. } => {
                h.write_u64(2);
                h.write_u64(*k as u64);
                h.write_u64(*seed);
            }
            LandscapeSpec::ErrorClass { phi, .. } => {
                h.write_u64(3);
                h.write_u64(phi.len() as u64);
                for &f in phi {
                    h.write_f64(f);
                }
            }
            LandscapeSpec::Tabulated { fitness } => {
                h.write_u64(4);
                h.write_u64(fitness.len() as u64);
                for &f in fitness {
                    h.write_f64(f);
                }
            }
        }
    }
}

/// Scheduling hints: *how* a request is computed, never *what* it
/// computes. Excluded from [`SolveRequest::cache_key`] and
/// [`SolveRequest::group_key`] by design — any result filed under a key
/// satisfies that key's problem to its tolerance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scheduling {
    /// Prefer the thread-pool engine for per-point (non-batched) solves.
    pub parallel: bool,
    /// Allow continuation warm starts (see the module docs): batched
    /// [`Method::Power`] sweeps seed each column from already-converged
    /// neighbours, and a serving layer may seed from its eigenvector
    /// cache. Warm-started solves converge to the same `tol` but are not
    /// bit-identical to cold solves; set `false` for bit-reproducible
    /// fresh computations. Non-Power methods ignore this hint.
    pub warm_start: bool,
    /// Allow the block power iteration to compact converged columns out
    /// of its slab (see [`PowerOptions::compact_threshold`]); on by
    /// default. Per-column results are bit-identical either way — this
    /// hint only trades column-swap work against matvec columns, which
    /// is why it lives in [`Scheduling`] and stays out of the cache key.
    /// The benchmark harness turns it off to measure the saving.
    pub compact: bool,
}

impl Default for Scheduling {
    fn default() -> Self {
        Scheduling {
            parallel: false,
            warm_start: true,
            compact: true,
        }
    }
}

/// An externally converged eigenvector offered as a warm-start anchor
/// for [`SolveRequest::run_seeded_in`]. Seeds whose length does not
/// match the request's dimension (or whose entries are not finite) are
/// ignored, never trusted.
#[derive(Debug, Clone)]
pub struct StartSeed {
    /// The error rate the vector converged at.
    pub p: f64,
    /// The converged eigenvector (any positive scaling; length `2^ν`).
    /// Shared so a serving cache can hand out seeds without copying.
    pub vector: Arc<Vec<f64>>,
}

/// One complete solve question: a landscape, an error-rate grid and the
/// solver knobs that change the answer — plus scheduling hints that
/// don't.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveRequest {
    /// The fitness landscape, by recipe.
    pub landscape: LandscapeSpec,
    /// Error rates to solve at; answered in request order.
    pub ps: Vec<f64>,
    /// Eigensolver method. [`Method::Power`] runs the batched sweep
    /// path; the others fall back to one full solve per point.
    pub method: Method,
    /// Residual tolerance `τ`.
    pub tol: f64,
    /// Iteration budget per point.
    pub max_iter: usize,
    /// Scheduling hints ([`Scheduling`]): excluded from cache and group
    /// keys — they must not change what the answer *is*, only how it is
    /// computed.
    pub scheduling: Scheduling,
}

impl SolveRequest {
    /// A single-point request with the default method, tolerance and
    /// budget.
    pub fn single(landscape: LandscapeSpec, p: f64) -> Self {
        Self::sweep(landscape, vec![p])
    }

    /// A multi-point request with the default method, tolerance and
    /// budget.
    pub fn sweep(landscape: LandscapeSpec, ps: Vec<f64>) -> Self {
        let defaults = SolverConfig::default();
        SolveRequest {
            landscape,
            ps,
            method: Method::Power,
            tol: defaults.tol,
            max_iter: defaults.max_iter,
            scheduling: Scheduling::default(),
        }
    }

    /// Validate the landscape and every solver knob, without building
    /// anything.
    pub fn validate(&self) -> Result<(), SolveError> {
        self.landscape.validate()?;
        if self.ps.is_empty() {
            return Err(invalid("ps", "error-rate grid must be non-empty".into()));
        }
        if let Some(bad) = self
            .ps
            .iter()
            .find(|p| !(p.is_finite() && **p > 0.0 && **p <= 0.5))
        {
            return Err(invalid(
                "p",
                format!("error rates must lie in (0, 1/2], got {bad}"),
            ));
        }
        if !(self.tol.is_finite() && self.tol > 0.0) {
            return Err(invalid(
                "tol",
                format!(
                    "residual tolerance must be finite and positive, got {}",
                    self.tol
                ),
            ));
        }
        if self.max_iter == 0 {
            return Err(invalid("max_iter", "iteration budget must be ≥ 1".into()));
        }
        Ok(())
    }

    /// Fold the method discriminant (and its parameters) into `h`.
    fn hash_method(&self, h: &mut Fnv64) {
        match self.method {
            Method::Power => h.write_u64(0),
            Method::Lanczos { subspace } => {
                h.write_u64(1);
                h.write_u64(subspace as u64);
            }
            Method::Rqi { warmup } => {
                h.write_u64(2);
                h.write_u64(warmup as u64);
            }
        }
    }

    /// Fold everything but `p` — the parts all points of this request
    /// share — into `h`.
    fn hash_shared(&self, h: &mut Fnv64) {
        self.landscape.hash_into(h);
        self.hash_method(h);
        h.write_f64(self.tol);
    }

    /// The warm-start cache identity: `(landscape, method)` **without**
    /// the tolerance. A converged eigenvector is a valid *seed* at any
    /// tolerance — the solve still iterates to its own `tol` — so
    /// near-miss reuse across tolerances is deliberate, unlike the
    /// exact-match [`SolveRequest::cache_key`].
    pub fn warm_key(&self) -> u64 {
        let mut h = Fnv64::new();
        self.landscape.hash_into(&mut h);
        self.hash_method(&mut h);
        h.finish()
    }

    /// The content address of the `(landscape, ν, p, method, tol)` point:
    /// the result cache's key. Exact bit patterns are hashed — `0.01`
    /// and `0.01 + ε` are different problems.
    pub fn cache_key(&self, p: f64) -> u64 {
        let mut h = Fnv64::new();
        self.hash_shared(&mut h);
        h.write_f64(p);
        h.finish()
    }

    /// The coalescing identity: requests with equal group keys differ at
    /// most in their error rates and can be answered by one batched
    /// engine run (each `p` becomes a column). Includes the iteration
    /// budget — columns of one block share it.
    pub fn group_key(&self) -> u64 {
        let mut h = Fnv64::new();
        self.hash_shared(&mut h);
        h.write_u64(self.max_iter as u64);
        h.finish()
    }

    /// Answer the request with a private, cold workspace.
    pub fn run(&self) -> Result<SolveResult, SolveError> {
        self.run_in(&mut Workspace::new())
    }

    /// Answer the request, drawing solver working memory from `ws`.
    ///
    /// [`Method::Power`] requests run the batched sweep path: one block
    /// power iteration over a [`QSweep`] operator whose columns are the
    /// request's error rates, so the FWHT stage sweeps are paid once per
    /// step for the whole grid. Repeated same-shape requests against a
    /// warmed `ws` run allocation-free (see
    /// [`Workspace::bytes_since_mark`]); park the returned concentration
    /// vectors back via [`SolveResult::recycle`] to keep the pool warm.
    /// Other methods fall back to one independent solve per point.
    ///
    /// # Errors
    ///
    /// [`SolveError::InvalidConfig`] from [`SolveRequest::validate`];
    /// [`SolveError::NotConverged`] if any point exhausts the budget.
    pub fn run_in(&self, ws: &mut Workspace) -> Result<SolveResult, SolveError> {
        self.run_seeded_in(&[], ws)
    }

    /// Answer the request like [`SolveRequest::run_in`], additionally
    /// offering externally converged eigenvectors as warm-start anchors.
    ///
    /// Seeds participate in the continuation ladder as pre-converged
    /// points (provenance `"cache"` in [`SolveStats::warm_start`]); they
    /// are ignored when `scheduling.warm_start` is off, when the method
    /// is not [`Method::Power`], or when a seed's dimension does not
    /// match the landscape.
    ///
    /// # Errors
    ///
    /// Same as [`SolveRequest::run_in`].
    pub fn run_seeded_in(
        &self,
        seeds: &[StartSeed],
        ws: &mut Workspace,
    ) -> Result<SolveResult, SolveError> {
        self.validate()?;
        let landscape = self.landscape.build()?;
        let nu = landscape.nu();
        let (solutions, batched, block) = match self.method {
            Method::Power => {
                // The ladder needs enough columns (or external anchors)
                // to amortise its phase structure; tiny cold grids take
                // the single-block path unchanged.
                let warm = self.scheduling.warm_start && (self.ps.len() >= 4 || !seeds.is_empty());
                let compact = self.scheduling.compact;
                let (solutions, block) = if warm {
                    solve_continuation_sweep(
                        landscape.as_ref(),
                        &self.ps,
                        self.tol,
                        self.max_iter,
                        compact,
                        seeds,
                        ws,
                    )?
                } else {
                    solve_uniform_sweep(
                        landscape.as_ref(),
                        &self.ps,
                        self.tol,
                        self.max_iter,
                        compact,
                        ws,
                    )?
                };
                (solutions, true, block)
            }
            method => {
                let config = SolverConfig {
                    method,
                    tol: self.tol,
                    max_iter: self.max_iter,
                    engine: if self.scheduling.parallel {
                        Engine::FmmpParallel
                    } else {
                        Engine::default()
                    },
                    ..Default::default()
                };
                let mut out = Vec::with_capacity(self.ps.len());
                for &p in &self.ps {
                    out.push(solve(p, landscape.as_ref(), &config)?);
                }
                (out, false, BlockSolveStats::default())
            }
        };
        let points = self
            .ps
            .iter()
            .zip(solutions)
            .map(|(&p, solution)| PointResult {
                p,
                cache_key: self.cache_key(p),
                solution,
            })
            .collect();
        Ok(SolveResult {
            nu,
            batched,
            block,
            points,
        })
    }
}

/// One answered point of a [`SolveResult`].
#[derive(Debug, Clone)]
pub struct PointResult {
    /// The error rate this point was solved at.
    pub p: f64,
    /// Its content address (see [`SolveRequest::cache_key`]).
    pub cache_key: u64,
    /// The stationary distribution and its solve stats.
    pub solution: Quasispecies,
}

/// Aggregate block-compaction telemetry for one answered request, summed
/// over every block power iteration the request ran (one for a uniform
/// sweep, one per generation for a continuation sweep). All-zero when the
/// request was answered by per-point solves instead of the block path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockSolveStats {
    /// Block columns advanced (grid points, summed over generations).
    pub columns: u64,
    /// Slab compactions performed
    /// (see [`PowerOptions::compact_threshold`]).
    pub compactions: u64,
    /// Matvec columns actually paid: `Σ` slab width over block steps.
    pub matvec_columns: u64,
    /// Matvec columns avoided by compaction
    /// (`Σ iterations × k − matvec_columns`).
    pub matvec_columns_saved: u64,
}

impl BlockSolveStats {
    fn absorb(&mut self, block: &BlockPowerOutcome) {
        self.columns += block.columns.len() as u64;
        self.compactions += block.compactions as u64;
        self.matvec_columns += block.matvec_columns;
        self.matvec_columns_saved += block.matvec_columns_saved;
    }
}

/// The answer to a [`SolveRequest`]: one [`PointResult`] per requested
/// error rate, in request order.
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// Chain length of the solved landscape.
    pub nu: u32,
    /// Whether the grid was answered by one batched engine run (`true`)
    /// or by independent per-point solves.
    pub batched: bool,
    /// Aggregate block-compaction telemetry ([`BlockSolveStats`]);
    /// all-zero for non-batched answers.
    pub block: BlockSolveStats,
    /// Per-point answers, in request order.
    pub points: Vec<PointResult>,
}

impl SolveResult {
    /// Park every concentration vector back into `ws`, consuming the
    /// result. A serving loop that recycles each result after encoding
    /// it keeps the workspace warm enough that the next same-shape
    /// request allocates nothing.
    pub fn recycle(self, ws: &mut Workspace) {
        for point in self.points {
            ws.put(point.solution.concentrations);
        }
    }
}

/// Per-`p` mutation diagonal + shared [`QSweep`] spectral product: the
/// coalesced multi-rate operator. One diagonal pass per column plus a
/// single batched spectral product, so the two FWHT stage traversals are
/// shared by the whole grid. Batch-only by construction — a
/// single-vector application cannot know which `p_j` it belongs to.
struct SweepWOperator {
    sweep: QSweep,
    fitness: Vec<f64>,
}

impl LinearOperator for SweepWOperator {
    fn len(&self) -> usize {
        self.sweep.len()
    }

    fn apply_into(&self, _x: &[f64], _y: &mut [f64]) {
        unreachable!("the sweep operator is batch-only; use apply_batch")
    }

    fn flops_estimate(&self) -> f64 {
        self.sweep.flops_estimate() + (self.sweep.columns() * self.len()) as f64
    }

    fn apply_batch(&self, slab: &mut [f64]) {
        let n = self.len();
        assert_eq!(
            slab.len(),
            n * self.sweep.columns(),
            "apply_batch: slab must hold one column per sweep error rate"
        );
        for col in slab.chunks_exact_mut(n) {
            qs_linalg::vec_ops::apply_diagonal(&self.fitness, col);
        }
        self.sweep.apply_batch(slab);
    }

    fn apply_batch_selected(&self, slab: &mut [f64], cols: &[usize]) {
        let n = self.len();
        assert_eq!(
            slab.len(),
            n * cols.len(),
            "apply_batch_selected: slab must hold one column per selected rate"
        );
        // Same fitness diagonal on every lane; the sweep then picks each
        // selected rate's spectral table, so a compacted slab's lanes are
        // bit-identical to the matching lanes of a full-width apply.
        for col in slab.chunks_exact_mut(n) {
            qs_linalg::vec_ops::apply_diagonal(&self.fitness, col);
        }
        self.sweep.apply_batch_selected(slab, cols);
    }
}

/// Solve the **uniform-model** stationary distribution at every rate in
/// `ps` through one batched block power iteration (the engine behind
/// both [`SolveRequest::run_in`] with [`Method::Power`] and
/// [`crate::threshold::scan_full_sweep`]). Working memory comes from
/// `ws`; one solution per rate, in grid order.
///
/// # Errors
///
/// [`SolveError::InvalidConfig`] on an empty grid, rates outside
/// `(0, 1/2]` or non-positive fitness values;
/// [`SolveError::NotConverged`] if any column exhausts `max_iter`.
pub(crate) fn solve_uniform_sweep<L: Landscape + ?Sized>(
    landscape: &L,
    ps: &[f64],
    tol: f64,
    max_iter: usize,
    compact: bool,
    ws: &mut Workspace,
) -> Result<(Vec<Quasispecies>, BlockSolveStats), SolveError> {
    let fitness = checked_sweep_fitness(landscape, ps, tol)?;
    let nu = landscape.nu();
    let n = fitness.len();
    let k = ps.len();

    // The paper's start vector, replicated into every pooled slab column.
    let mut start = ws.take_copy(&fitness);
    qs_linalg::vec_ops::normalize_l1(&mut start);
    let mut slab = ws.take(n * k);
    for col in slab.chunks_exact_mut(n) {
        col.copy_from_slice(&start);
    }
    ws.put(start);

    let op = SweepWOperator {
        sweep: QSweep::new(nu, ps),
        fitness,
    };
    let opts = PowerOptions {
        tol,
        max_iter,
        compact_threshold: compact_threshold_for(compact),
        ..Default::default()
    };
    let block = block_power_iteration_in(&op, &slab, &opts, ws);
    ws.put(slab);
    let mut stats = BlockSolveStats::default();
    stats.absorb(&block);

    let mut solutions = Vec::with_capacity(k);
    for col in block.columns {
        if !col.converged {
            return Err(SolveError::NotConverged {
                iterations: col.iterations,
                residual: col.residual,
            });
        }
        let summary = col_summary(&col);
        solutions.push(Quasispecies::from_right_eigenvector(
            col.lambda,
            col.vector,
            block_stats(&summary, None),
        ));
    }
    Ok((solutions, stats))
}

/// Map the [`Scheduling::compact`] hint onto
/// [`PowerOptions::compact_threshold`]: the default threshold when on,
/// `0.0` (never compact) when off.
fn compact_threshold_for(compact: bool) -> f64 {
    if compact {
        PowerOptions::default().compact_threshold
    } else {
        0.0
    }
}

/// Shared input validation for the batched sweep paths; returns the
/// materialised (and checked) fitness table.
fn checked_sweep_fitness<L: Landscape + ?Sized>(
    landscape: &L,
    ps: &[f64],
    tol: f64,
) -> Result<Vec<f64>, SolveError> {
    if ps.is_empty() {
        return Err(SolveError::InvalidConfig {
            parameter: "ps",
            detail: "error-rate grid must be non-empty".into(),
        });
    }
    if let Some(bad) = ps
        .iter()
        .find(|p| !(p.is_finite() && **p > 0.0 && **p <= 0.5))
    {
        return Err(SolveError::InvalidConfig {
            parameter: "p",
            detail: format!("error rates must lie in (0, 1/2], got {bad}"),
        });
    }
    if !(tol.is_finite() && tol > 0.0) {
        return Err(SolveError::InvalidConfig {
            parameter: "tol",
            detail: format!("residual tolerance must be finite and positive, got {tol}"),
        });
    }
    let fitness = landscape.materialize();
    if let Some(bad) = fitness.iter().find(|f| !(f.is_finite() && **f > 0.0)) {
        return Err(SolveError::InvalidConfig {
            parameter: "fitness",
            detail: format!("fitness values must be finite and strictly positive, found {bad}"),
        });
    }
    Ok(fitness)
}

/// The scalar diagnostics of one converged block column (everything but
/// the vector, which is moved out separately).
struct ColSummary {
    lambda: f64,
    iterations: usize,
    matvecs: usize,
    residual: f64,
}

fn col_summary(col: &crate::power::PowerOutcome) -> ColSummary {
    ColSummary {
        lambda: col.lambda,
        iterations: col.iterations,
        matvecs: col.matvecs,
        residual: col.residual,
    }
}

fn block_stats(col: &ColSummary, warm: Option<WarmStartInfo>) -> SolveStats {
    SolveStats {
        iterations: col.iterations,
        matvecs: col.matvecs,
        residual: col.residual,
        converged: true,
        engine: "QSweep".into(),
        method: "Pi-block".into(),
        shift: 0.0,
        degraded: false,
        recovered_from: None,
        deadline_expired: false,
        residual_history: None,
        warm_start: warm,
    }
}

/// How a continuation column's start vector was produced.
#[derive(Clone, Copy)]
enum SeedKind {
    /// The paper's generic fitness start (no usable anchors).
    Cold,
    /// Interpolated/copied from anchors; `from_p` is the nearest anchor's
    /// error rate and `external` whether that anchor was a caller seed.
    Warm { from_p: f64, external: bool },
}

/// Solve the uniform-model sweep in **continuation order** (see the
/// module docs): endpoints first, then bisection generations, each
/// generation one batched block power iteration whose columns are seeded
/// by quadratic Lagrange interpolation over the three nearest
/// already-converged anchors. `seeds` join as pre-converged anchors.
///
/// Produces the same answers as [`solve_uniform_sweep`] to the residual
/// tolerance (not bit-identically), in grid order, with
/// [`SolveStats::warm_start`] provenance on every warm-seeded column.
///
/// # Errors
///
/// Same as [`solve_uniform_sweep`].
pub(crate) fn solve_continuation_sweep<L: Landscape + ?Sized>(
    landscape: &L,
    ps: &[f64],
    tol: f64,
    max_iter: usize,
    compact: bool,
    seeds: &[StartSeed],
    ws: &mut Workspace,
) -> Result<(Vec<Quasispecies>, BlockSolveStats), SolveError> {
    let fitness = checked_sweep_fitness(landscape, ps, tol)?;
    let nu = landscape.nu();
    let n = fitness.len();
    let k = ps.len();

    // Anchors the ladder may seed from: externally converged vectors
    // first (validated, never trusted), then internally converged
    // columns as the generations complete.
    let seeds: Vec<&StartSeed> = seeds
        .iter()
        .filter(|s| {
            s.vector.len() == n
                && s.p.is_finite()
                && s.vector.iter().all(|v| v.is_finite())
                && s.vector.iter().any(|&v| v != 0.0)
        })
        .collect();

    // Work over positions sorted by rate so "nearest" and "bracket" are
    // well defined; duplicates land adjacent and simply copy their twin.
    let mut sorted: Vec<usize> = (0..k).collect();
    sorted.sort_by(|&a, &b| ps[a].partial_cmp(&ps[b]).unwrap());
    let sp: Vec<f64> = sorted.iter().map(|&i| ps[i]).collect();

    // Continuation order as generations: the grid endpoints, then the
    // midpoint of every maximal unsolved run — each generation halves
    // its columns' bracket distance, so seeds keep getting better.
    let mut generations: Vec<Vec<usize>> = Vec::new();
    let mut scheduled = vec![false; k];
    let mut first = vec![0];
    scheduled[0] = true;
    if k > 1 {
        first.push(k - 1);
        scheduled[k - 1] = true;
    }
    generations.push(first);
    while scheduled.iter().any(|&s| !s) {
        let mut generation = Vec::new();
        let mut j = 0;
        while j < k {
            if scheduled[j] {
                j += 1;
                continue;
            }
            let mut end = j;
            while end < k && !scheduled[end] {
                end += 1;
            }
            generation.push(j + (end - j) / 2);
            j = end;
        }
        for &g in &generation {
            scheduled[g] = true;
        }
        generations.push(generation);
    }

    let opts = PowerOptions {
        tol,
        max_iter,
        compact_threshold: compact_threshold_for(compact),
        ..Default::default()
    };
    let mut stats = BlockSolveStats::default();
    // Converged columns by sorted position; vectors double as anchors.
    let mut done: Vec<Option<(ColSummary, Vec<f64>)>> = (0..k).map(|_| None).collect();
    let mut seed_kinds: Vec<SeedKind> = vec![SeedKind::Cold; k];

    let mut cold_start = ws.take_copy(&fitness);
    qs_linalg::vec_ops::normalize_l1(&mut cold_start);

    for generation in &generations {
        let m = generation.len();
        let mut slab = ws.take(n * m);
        for (c, &j) in generation.iter().enumerate() {
            let col = &mut slab[c * n..(c + 1) * n];
            seed_kinds[j] = fill_seed(col, sp[j], &sp, &done, &seeds, &cold_start);
        }
        let op = SweepWOperator {
            sweep: QSweep::new(nu, &generation.iter().map(|&j| sp[j]).collect::<Vec<f64>>()),
            fitness: fitness.clone(),
        };
        let block = block_power_iteration_in(&op, &slab, &opts, ws);
        ws.put(slab);
        stats.absorb(&block);
        for (col, &j) in block.columns.into_iter().zip(generation) {
            if !col.converged {
                ws.put(cold_start);
                return Err(SolveError::NotConverged {
                    iterations: col.iterations,
                    residual: col.residual,
                });
            }
            done[j] = Some((col_summary(&col), col.vector));
        }
    }
    ws.put(cold_start);

    // Iteration savings are attributed against the nearest cold-started
    // column of this run — a documented estimate of what each warm
    // column would have cost from the generic start.
    let cold_baseline: Vec<(f64, usize)> = (0..k)
        .filter(|&j| matches!(seed_kinds[j], SeedKind::Cold))
        .map(|j| (sp[j], done[j].as_ref().unwrap().0.iterations))
        .collect();

    let mut solutions: Vec<Option<Quasispecies>> = (0..k).map(|_| None).collect();
    for (j, slot) in done.into_iter().enumerate() {
        let (summary, vector) = slot.unwrap();
        let warm = match seed_kinds[j] {
            SeedKind::Cold => None,
            SeedKind::Warm { from_p, external } => {
                let baseline = cold_baseline
                    .iter()
                    .min_by(|a, b| {
                        (a.0 - sp[j])
                            .abs()
                            .partial_cmp(&(b.0 - sp[j]).abs())
                            .unwrap()
                    })
                    .map_or(0, |&(_, iters)| iters);
                Some(WarmStartInfo {
                    source: if external { "cache" } else { "continuation" }.into(),
                    from_p,
                    iterations_saved: baseline.saturating_sub(summary.iterations),
                })
            }
        };
        solutions[sorted[j]] = Some(Quasispecies::from_right_eigenvector(
            summary.lambda,
            vector,
            block_stats(&summary, warm),
        ));
    }
    Ok((solutions.into_iter().map(Option::unwrap).collect(), stats))
}

/// Fill `col` with the best available start vector for rate `p`:
/// quadratic Lagrange interpolation over the three nearest converged
/// anchors when available, degrading to linear interpolation, a straight
/// copy of the nearest anchor, and finally the cold fitness start. A
/// non-finite or vanishing interpolant falls back to the nearest-anchor
/// copy — a bad extrapolation must never poison a column.
fn fill_seed(
    col: &mut [f64],
    p: f64,
    sp: &[f64],
    done: &[Option<(ColSummary, Vec<f64>)>],
    seeds: &[&StartSeed],
    cold_start: &[f64],
) -> SeedKind {
    // (|Δp|, p_anchor, vector, external) for every converged anchor.
    let mut anchors: Vec<(f64, f64, &[f64], bool)> = Vec::with_capacity(8);
    for (j, slot) in done.iter().enumerate() {
        if let Some((_, vector)) = slot {
            anchors.push(((sp[j] - p).abs(), sp[j], vector.as_slice(), false));
        }
    }
    for seed in seeds {
        anchors.push(((seed.p - p).abs(), seed.p, seed.vector.as_slice(), true));
    }
    if anchors.is_empty() {
        col.copy_from_slice(cold_start);
        return SeedKind::Cold;
    }
    anchors.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    let (_, near_p, near_vec, near_ext) = anchors[0];

    // Up to three nearest anchors at pairwise-distinct rates — Lagrange
    // weights divide by rate differences.
    let mut chosen: Vec<(f64, &[f64])> = vec![(near_p, near_vec)];
    for &(_, ap, av, _) in anchors.iter().skip(1) {
        if chosen.len() == 3 {
            break;
        }
        if chosen.iter().all(|&(cp, _)| cp != ap) {
            chosen.push((ap, av));
        }
    }
    match chosen[..] {
        [(pa, va), (pb, vb), (pc, vc)] => {
            let la = (p - pb) * (p - pc) / ((pa - pb) * (pa - pc));
            let lb = (p - pa) * (p - pc) / ((pb - pa) * (pb - pc));
            let lc = (p - pa) * (p - pb) / ((pc - pa) * (pc - pb));
            for (i, out) in col.iter_mut().enumerate() {
                *out = la * va[i] + lb * vb[i] + lc * vc[i];
            }
        }
        [(pa, va), (pb, vb)] => {
            let la = (p - pb) / (pa - pb);
            let lb = (p - pa) / (pb - pa);
            for (i, out) in col.iter_mut().enumerate() {
                *out = la * va[i] + lb * vb[i];
            }
        }
        _ => col.copy_from_slice(near_vec),
    }
    // An extrapolated seed can in principle cancel to junk; the block
    // iteration normalises but cannot rescue a zero or non-finite start.
    let norm_ok = col.iter().all(|v| v.is_finite()) && col.iter().any(|&v| v.abs() > 1e-300);
    if !norm_ok {
        col.copy_from_slice(near_vec);
    }
    SeedKind::Warm {
        from_p: near_p,
        external: near_ext,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::ShiftStrategy;

    fn peak(nu: u32) -> LandscapeSpec {
        LandscapeSpec::SinglePeak {
            nu,
            f0: 2.0,
            f_rest: 1.0,
        }
    }

    #[test]
    fn specs_build_and_report_nu() {
        let specs = [
            peak(6),
            LandscapeSpec::Random {
                nu: 6,
                c: 5.0,
                sigma: 1.0,
                seed: 42,
            },
            LandscapeSpec::Nk {
                nu: 6,
                k: 2,
                seed: 42,
            },
            LandscapeSpec::ErrorClass {
                nu: 6,
                phi: vec![1.0; 7],
            },
            LandscapeSpec::Tabulated {
                fitness: vec![1.0; 64],
            },
        ];
        for spec in specs {
            let built = spec.build().unwrap();
            assert_eq!(built.nu(), 6, "{}", spec.kind());
            assert_eq!(spec.nu(), 6);
        }
    }

    #[test]
    fn malformed_specs_are_typed_errors_not_panics() {
        let cases = [
            LandscapeSpec::SinglePeak {
                nu: 6,
                f0: -1.0,
                f_rest: 1.0,
            },
            LandscapeSpec::SinglePeak {
                nu: 0,
                f0: 2.0,
                f_rest: 1.0,
            },
            LandscapeSpec::SinglePeak {
                nu: 64,
                f0: 2.0,
                f_rest: 1.0,
            },
            LandscapeSpec::Random {
                nu: 6,
                c: 5.0,
                sigma: 10.0,
                seed: 0,
            },
            LandscapeSpec::Nk {
                nu: 6,
                k: 6,
                seed: 0,
            },
            LandscapeSpec::ErrorClass {
                nu: 6,
                phi: vec![1.0; 3],
            },
            LandscapeSpec::Tabulated {
                fitness: vec![1.0; 63],
            },
            LandscapeSpec::Tabulated {
                fitness: vec![f64::NAN; 64],
            },
        ];
        for spec in cases {
            assert!(
                matches!(spec.build(), Err(SolveError::InvalidConfig { .. })),
                "{spec:?} must be rejected"
            );
        }
    }

    #[test]
    fn bad_request_knobs_are_typed_errors() {
        let mut req = SolveRequest::single(peak(6), 0.01);
        req.ps.clear();
        assert!(matches!(
            req.validate(),
            Err(SolveError::InvalidConfig {
                parameter: "ps",
                ..
            })
        ));
        let req = SolveRequest::single(peak(6), 0.7);
        assert!(matches!(
            req.validate(),
            Err(SolveError::InvalidConfig { parameter: "p", .. })
        ));
        let mut req = SolveRequest::single(peak(6), 0.01);
        req.tol = -1.0;
        assert!(matches!(
            req.validate(),
            Err(SolveError::InvalidConfig {
                parameter: "tol",
                ..
            })
        ));
        let mut req = SolveRequest::single(peak(6), 0.01);
        req.max_iter = 0;
        assert!(matches!(
            req.validate(),
            Err(SolveError::InvalidConfig {
                parameter: "max_iter",
                ..
            })
        ));
    }

    #[test]
    fn cache_keys_separate_every_dimension_of_the_problem() {
        // Every variation of (landscape, ν, p, method, tol) must land on
        // its own address; collisions would serve one problem's answer to
        // another.
        let base = SolveRequest::single(peak(8), 0.01);
        let mut variants: Vec<SolveRequest> = vec![base.clone()];
        variants.push(SolveRequest::single(peak(9), 0.01));
        variants.push(SolveRequest::single(
            LandscapeSpec::SinglePeak {
                nu: 8,
                f0: 2.5,
                f_rest: 1.0,
            },
            0.01,
        ));
        variants.push(SolveRequest::single(
            LandscapeSpec::Random {
                nu: 8,
                c: 5.0,
                sigma: 1.0,
                seed: 1,
            },
            0.01,
        ));
        variants.push(SolveRequest::single(
            LandscapeSpec::Random {
                nu: 8,
                c: 5.0,
                sigma: 1.0,
                seed: 2,
            },
            0.01,
        ));
        let mut m = base.clone();
        m.method = Method::Lanczos { subspace: 24 };
        variants.push(m);
        let mut m = base.clone();
        m.method = Method::Rqi { warmup: 5 };
        variants.push(m);
        let mut t = base.clone();
        t.tol = 1e-10;
        variants.push(t);

        let mut keys: Vec<u64> = Vec::new();
        for req in &variants {
            keys.push(req.cache_key(0.01));
        }
        // Distinct p values on the same request, including a one-ulp
        // neighbour.
        keys.push(base.cache_key(0.02));
        keys.push(base.cache_key(f64::from_bits(0.01f64.to_bits() + 1)));

        let unique: std::collections::HashSet<u64> = keys.iter().copied().collect();
        assert_eq!(unique.len(), keys.len(), "cache keys collided: {keys:?}");
    }

    #[test]
    fn group_key_ignores_p_but_tracks_the_rest() {
        let a = SolveRequest::single(peak(8), 0.01);
        let b = SolveRequest::single(peak(8), 0.04);
        assert_eq!(
            a.group_key(),
            b.group_key(),
            "requests differing only in p must coalesce"
        );
        assert_ne!(a.cache_key(0.01), b.cache_key(0.04));
        let mut c = a.clone();
        c.tol = 1e-9;
        assert_ne!(a.group_key(), c.group_key());
        let mut d = a.clone();
        d.max_iter += 1;
        assert_ne!(a.group_key(), d.group_key());
        // Scheduling hints are excluded from both keys by design.
        let mut e = a.clone();
        e.scheduling.parallel = true;
        e.scheduling.warm_start = false;
        assert_eq!(a.group_key(), e.group_key());
        assert_eq!(a.cache_key(0.01), e.cache_key(0.01));
    }

    #[test]
    fn warm_key_separates_landscape_and_method_but_not_tol() {
        let a = SolveRequest::single(peak(8), 0.01);
        let mut b = a.clone();
        b.tol = 1e-8;
        assert_eq!(
            a.warm_key(),
            b.warm_key(),
            "a converged vector seeds any tolerance"
        );
        assert_ne!(a.cache_key(0.01), b.cache_key(0.01));
        let c = SolveRequest::single(peak(9), 0.01);
        assert_ne!(a.warm_key(), c.warm_key());
        let mut d = a.clone();
        d.method = Method::Lanczos { subspace: 24 };
        assert_ne!(a.warm_key(), d.warm_key());
        assert_eq!(a.landscape.content_hash(), b.landscape.content_hash());
    }

    #[test]
    fn batched_run_matches_independent_solves_at_tolerance() {
        let req = SolveRequest::sweep(peak(7), vec![0.005, 0.01, 0.02, 0.04]);
        let result = req.run().unwrap();
        assert!(result.batched);
        assert_eq!(result.nu, 7);
        assert_eq!(result.points.len(), 4);
        let config = SolverConfig {
            tol: req.tol,
            max_iter: req.max_iter,
            shift: ShiftStrategy::None,
            ..Default::default()
        };
        let landscape = req.landscape.build().unwrap();
        for point in &result.points {
            let reference = solve(point.p, landscape.as_ref(), &config).unwrap();
            assert!(
                (point.solution.lambda - reference.lambda).abs() < 1e-9,
                "p = {}: λ {} vs {}",
                point.p,
                point.solution.lambda,
                reference.lambda
            );
            let sum: f64 = point.solution.concentrations.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(point.solution.stats.converged);
            assert_eq!(point.cache_key, req.cache_key(point.p));
        }
    }

    #[test]
    fn non_power_methods_fall_back_to_per_point_solves() {
        let mut req = SolveRequest::sweep(peak(6), vec![0.01, 0.02]);
        req.method = Method::Lanczos { subspace: 24 };
        let result = req.run().unwrap();
        assert!(!result.batched);
        assert_eq!(result.points.len(), 2);
        for point in &result.points {
            assert!(point.solution.stats.converged);
        }
    }

    #[test]
    fn continuation_sweep_agrees_with_cold_sweep_and_records_provenance() {
        let ps: Vec<f64> = (1..=9).map(|i| 0.005 * i as f64).collect();
        let mut cold = SolveRequest::sweep(peak(8), ps.clone());
        cold.tol = 1e-10;
        cold.scheduling.warm_start = false;
        let mut warm = cold.clone();
        warm.scheduling.warm_start = true;
        let a = cold.run().unwrap();
        let b = warm.run().unwrap();
        assert!(a.batched && b.batched);
        let mut warm_columns = 0usize;
        let mut saved = 0usize;
        for (x, y) in a.points.iter().zip(&b.points) {
            assert!(y.solution.stats.residual <= cold.tol);
            assert!(
                (x.solution.lambda - y.solution.lambda).abs() <= 10.0 * cold.tol,
                "p = {}: cold λ {} vs warm λ {}",
                x.p,
                x.solution.lambda,
                y.solution.lambda
            );
            assert!(x.solution.stats.warm_start.is_none(), "cold run stays cold");
            if let Some(info) = &y.solution.stats.warm_start {
                assert_eq!(info.source, "continuation");
                warm_columns += 1;
                saved += info.iterations_saved;
            }
        }
        assert!(
            warm_columns >= ps.len() - 2,
            "everything past the endpoints must be warm-seeded, got {warm_columns}"
        );
        assert!(saved > 0, "continuation must save iterations somewhere");
    }

    #[test]
    fn external_seeds_warm_start_tiny_grids_with_cache_provenance() {
        let mut req = SolveRequest::single(peak(7), 0.013);
        req.tol = 1e-10;
        // Converge a neighbouring rate first, then offer it as a seed.
        let neighbour = SolveRequest::single(peak(7), 0.012).run().unwrap();
        let seed = StartSeed {
            p: 0.012,
            vector: Arc::new(neighbour.points[0].solution.concentrations.clone()),
        };
        let mut ws = Workspace::new();
        let seeded = req.run_seeded_in(&[seed], &mut ws).unwrap();
        let info = seeded.points[0]
            .solution
            .stats
            .warm_start
            .as_ref()
            .expect("externally seeded solve records provenance");
        assert_eq!(info.source, "cache");
        assert!((info.from_p - 0.012).abs() < 1e-15);
        let cold = req.run().unwrap();
        assert!(
            (seeded.points[0].solution.lambda - cold.points[0].solution.lambda).abs()
                <= 10.0 * req.tol
        );
        // Malformed seeds are ignored, not trusted.
        let bad = StartSeed {
            p: 0.012,
            vector: Arc::new(vec![f64::NAN; 128]),
        };
        let out = req.run_seeded_in(&[bad], &mut ws).unwrap();
        assert!(out.points[0].solution.stats.converged);
    }

    #[test]
    fn opting_out_of_warm_start_reproduces_the_cold_path_bit_identically() {
        let ps = vec![0.004, 0.008, 0.012, 0.016, 0.02];
        let mut off = SolveRequest::sweep(peak(7), ps);
        off.scheduling.warm_start = false;
        let a = off.run().unwrap();
        let b = off.run().unwrap();
        for (x, y) in a.points.iter().zip(&b.points) {
            assert_eq!(x.solution.lambda.to_bits(), y.solution.lambda.to_bits());
            assert!(x.solution.stats.warm_start.is_none());
        }
    }

    #[test]
    fn repeat_runs_are_bit_identical() {
        let req = SolveRequest::sweep(peak(7), vec![0.01, 0.03]);
        let a = req.run().unwrap();
        let b = req.run().unwrap();
        for (x, y) in a.points.iter().zip(&b.points) {
            assert_eq!(x.solution.lambda.to_bits(), y.solution.lambda.to_bits());
            for (u, v) in x
                .solution
                .concentrations
                .iter()
                .zip(&y.solution.concentrations)
            {
                assert_eq!(u.to_bits(), v.to_bits());
            }
        }
    }

    #[test]
    fn warmed_workspace_serves_repeats_allocation_free() {
        let req = SolveRequest::sweep(peak(6), vec![0.01, 0.02, 0.03]);
        let mut ws = Workspace::new();
        // Warm-up request pays the pool misses once.
        req.run_in(&mut ws).unwrap().recycle(&mut ws);
        ws.mark();
        for _ in 0..3 {
            let result = req.run_in(&mut ws).unwrap();
            assert!(result.batched);
            result.recycle(&mut ws);
        }
        assert_eq!(
            ws.bytes_since_mark(),
            0,
            "steady-state batched serving must not touch the allocator"
        );
    }
}
