//! The solve-request API boundary: a self-describing problem statement
//! ([`SolveRequest`]) and its answer ([`SolveResult`]).
//!
//! Everything upstream of the engines — the CLI, the benchmark drivers
//! and the solve server — ultimately asks the same question: *given this
//! fitness landscape and these error rates, what is the stationary
//! distribution?* This module gives that question one typed, validated,
//! **content-addressable** form:
//!
//! * [`LandscapeSpec`] describes a landscape by construction recipe
//!   (kind + parameters) instead of by trait object, so a request can be
//!   hashed, compared, shipped over a wire and rebuilt bit-identically
//!   on the other side.
//! * [`SolveRequest`] adds the error-rate grid, eigensolver method,
//!   tolerance and scheduling hints. [`SolveRequest::cache_key`] derives
//!   the FNV-1a content address of each `(landscape, ν, p, method, tol)`
//!   point — the key of the serving layer's result cache — and
//!   [`SolveRequest::group_key`] the coalescing identity that requests
//!   differing *only in `p`* share.
//! * [`SolveRequest::run_in`] answers the whole grid in **one** batched
//!   block power iteration (per-`p` mutation diagonals as columns of a
//!   single [`QSweep`]-driven operator, the same factorisation as
//!   [`crate::threshold::scan_full_sweep`]) with every working buffer
//!   drawn from a caller-owned [`Workspace`] — a warmed pool serves
//!   repeated same-shape requests without touching the allocator.
//!
//! Scheduling hints ([`SolveRequest::parallel`]) deliberately do **not**
//! enter the cache key: they steer where and how fast a result is
//! computed, while the key addresses *what* is computed — any result
//! filed under a key satisfies that key's problem to its tolerance.

use crate::checkpoint::Fnv64;
use crate::power::{block_power_iteration_in, PowerOptions};
use crate::result::{Quasispecies, SolveStats};
use crate::solver::{solve, Engine, Method, SolveError, SolverConfig};
use crate::workspace::Workspace;
use qs_landscape::{ErrorClass, Landscape, Nk, Random, SinglePeak, Tabulated};
use qs_matvec::{LinearOperator, QSweep};

/// A fitness landscape described by its construction recipe.
///
/// Unlike a `Box<dyn Landscape>`, a spec can be validated without
/// panicking, hashed into a content address, and rebuilt exactly —
/// including the seeded kinds, whose pseudo-random tables are a pure
/// function of `(ν, parameters, seed)`.
#[derive(Debug, Clone, PartialEq)]
pub enum LandscapeSpec {
    /// Single master sequence of fitness `f0` over a flat background
    /// `f_rest` (the paper's canonical threshold landscape).
    SinglePeak {
        /// Chain length.
        nu: u32,
        /// Master-sequence fitness.
        f0: f64,
        /// Background fitness.
        f_rest: f64,
    },
    /// Seeded random landscape: master `c`, background `c/2 ± σ`.
    Random {
        /// Chain length.
        nu: u32,
        /// Master-sequence fitness.
        c: f64,
        /// Background half-width, in `(0, c/2)`.
        sigma: f64,
        /// PRNG seed; equal seeds rebuild identical tables.
        seed: u64,
    },
    /// Kauffman NK landscape with `k` epistatic neighbours per site.
    Nk {
        /// Chain length.
        nu: u32,
        /// Epistatic neighbours per site (`k < ν`, `k ≤ 24`).
        k: u32,
        /// PRNG seed; equal seeds rebuild identical tables.
        seed: u64,
    },
    /// Error-class landscape: fitness depends only on Hamming distance
    /// from the master, via the `ν+1` class values `phi`.
    ErrorClass {
        /// Chain length.
        nu: u32,
        /// Per-class fitness, `phi[k]` for Hamming class `k`.
        phi: Vec<f64>,
    },
    /// Fully tabulated fitness values, one per sequence (`2^ν` entries).
    Tabulated {
        /// Fitness table; length must be a power of two `≥ 2`.
        fitness: Vec<f64>,
    },
}

/// `InvalidConfig` shorthand for spec validation.
fn invalid(parameter: &'static str, detail: String) -> SolveError {
    SolveError::InvalidConfig { parameter, detail }
}

impl LandscapeSpec {
    /// Stable kind label (the CLI's `--landscape` vocabulary).
    pub fn kind(&self) -> &'static str {
        match self {
            LandscapeSpec::SinglePeak { .. } => "single-peak",
            LandscapeSpec::Random { .. } => "random",
            LandscapeSpec::Nk { .. } => "nk",
            LandscapeSpec::ErrorClass { .. } => "error-class",
            LandscapeSpec::Tabulated { .. } => "tabulated",
        }
    }

    /// Chain length `ν` the built landscape will report.
    pub fn nu(&self) -> u32 {
        match self {
            LandscapeSpec::SinglePeak { nu, .. }
            | LandscapeSpec::Random { nu, .. }
            | LandscapeSpec::Nk { nu, .. }
            | LandscapeSpec::ErrorClass { nu, .. } => *nu,
            LandscapeSpec::Tabulated { fitness } => fitness.len().trailing_zeros(),
        }
    }

    /// Check every parameter the constructors would otherwise `assert!`
    /// on, as typed errors — a malformed spec from an untrusted source
    /// (a wire request) must never panic the process.
    pub fn validate(&self) -> Result<(), SolveError> {
        let nu = self.nu();
        if !(1..=qs_bitseq::MAX_CHAIN_LENGTH).contains(&nu) {
            return Err(invalid(
                "nu",
                format!(
                    "chain length must lie in 1..={}, got {nu}",
                    qs_bitseq::MAX_CHAIN_LENGTH
                ),
            ));
        }
        match self {
            LandscapeSpec::SinglePeak { f0, f_rest, .. } => {
                for (name, v) in [("f0", *f0), ("f_rest", *f_rest)] {
                    if !(v.is_finite() && v > 0.0) {
                        return Err(invalid(
                            "landscape",
                            format!("{name} must be finite and positive, got {v}"),
                        ));
                    }
                }
            }
            LandscapeSpec::Random { c, sigma, .. } => {
                if !(c.is_finite() && *c > 0.0) {
                    return Err(invalid(
                        "landscape",
                        format!("c must be finite and positive, got {c}"),
                    ));
                }
                if !(sigma.is_finite() && *sigma > 0.0 && *sigma < c / 2.0) {
                    return Err(invalid(
                        "landscape",
                        format!("sigma must lie in (0, c/2), got {sigma}"),
                    ));
                }
            }
            LandscapeSpec::Nk { nu, k, .. } => {
                if *k >= *nu || *k > 24 {
                    return Err(invalid(
                        "landscape",
                        format!("NK requires k < ν and k ≤ 24, got k = {k} at ν = {nu}"),
                    ));
                }
            }
            LandscapeSpec::ErrorClass { nu, phi } => {
                if phi.len() != *nu as usize + 1 {
                    return Err(invalid(
                        "landscape",
                        format!("phi must have ν+1 = {} entries, got {}", nu + 1, phi.len()),
                    ));
                }
                if let Some(bad) = phi.iter().find(|f| !(f.is_finite() && **f > 0.0)) {
                    return Err(invalid(
                        "landscape",
                        format!("class fitness values must be finite and positive, found {bad}"),
                    ));
                }
            }
            LandscapeSpec::Tabulated { fitness } => {
                if !fitness.len().is_power_of_two() || fitness.len() < 2 {
                    return Err(invalid(
                        "landscape",
                        format!(
                            "fitness table length must be 2^ν with ν ≥ 1, got {}",
                            fitness.len()
                        ),
                    ));
                }
                if let Some(bad) = fitness.iter().find(|f| !(f.is_finite() && **f > 0.0)) {
                    return Err(invalid(
                        "landscape",
                        format!("fitness values must be finite and positive, found {bad}"),
                    ));
                }
            }
        }
        Ok(())
    }

    /// Build the landscape this spec describes.
    pub fn build(&self) -> Result<Box<dyn Landscape>, SolveError> {
        self.validate()?;
        Ok(match self {
            LandscapeSpec::SinglePeak { nu, f0, f_rest } => {
                Box::new(SinglePeak::new(*nu, *f0, *f_rest))
            }
            LandscapeSpec::Random { nu, c, sigma, seed } => {
                Box::new(Random::new(*nu, *c, *sigma, *seed))
            }
            LandscapeSpec::Nk { nu, k, seed } => Box::new(Nk::new(*nu, *k, *seed)),
            LandscapeSpec::ErrorClass { nu, phi } => Box::new(ErrorClass::new(*nu, phi.clone())),
            LandscapeSpec::Tabulated { fitness } => Box::new(Tabulated::new(fitness.clone())),
        })
    }

    /// Fold the spec into `h`: a kind tag, `ν`, then every parameter at
    /// exact bits. Seeded kinds hash `(parameters, seed)` rather than the
    /// expanded table — the table is a pure function of them.
    fn hash_into(&self, h: &mut Fnv64) {
        h.write_u64(self.nu() as u64);
        match self {
            LandscapeSpec::SinglePeak { f0, f_rest, .. } => {
                h.write_u64(0);
                h.write_f64(*f0);
                h.write_f64(*f_rest);
            }
            LandscapeSpec::Random { c, sigma, seed, .. } => {
                h.write_u64(1);
                h.write_f64(*c);
                h.write_f64(*sigma);
                h.write_u64(*seed);
            }
            LandscapeSpec::Nk { k, seed, .. } => {
                h.write_u64(2);
                h.write_u64(*k as u64);
                h.write_u64(*seed);
            }
            LandscapeSpec::ErrorClass { phi, .. } => {
                h.write_u64(3);
                h.write_u64(phi.len() as u64);
                for &f in phi {
                    h.write_f64(f);
                }
            }
            LandscapeSpec::Tabulated { fitness } => {
                h.write_u64(4);
                h.write_u64(fitness.len() as u64);
                for &f in fitness {
                    h.write_f64(f);
                }
            }
        }
    }
}

/// One complete solve question: a landscape, an error-rate grid and the
/// solver knobs that change the answer — plus scheduling hints that
/// don't.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveRequest {
    /// The fitness landscape, by recipe.
    pub landscape: LandscapeSpec,
    /// Error rates to solve at; answered in request order.
    pub ps: Vec<f64>,
    /// Eigensolver method. [`Method::Power`] runs the batched sweep
    /// path; the others fall back to one full solve per point.
    pub method: Method,
    /// Residual tolerance `τ`.
    pub tol: f64,
    /// Iteration budget per point.
    pub max_iter: usize,
    /// Scheduling hint: prefer the thread-pool engine for per-point
    /// solves. Excluded from cache and group keys — it must not change
    /// what the answer *is*, only how it is computed.
    pub parallel: bool,
}

impl SolveRequest {
    /// A single-point request with the default method, tolerance and
    /// budget.
    pub fn single(landscape: LandscapeSpec, p: f64) -> Self {
        Self::sweep(landscape, vec![p])
    }

    /// A multi-point request with the default method, tolerance and
    /// budget.
    pub fn sweep(landscape: LandscapeSpec, ps: Vec<f64>) -> Self {
        let defaults = SolverConfig::default();
        SolveRequest {
            landscape,
            ps,
            method: Method::Power,
            tol: defaults.tol,
            max_iter: defaults.max_iter,
            parallel: false,
        }
    }

    /// Validate the landscape and every solver knob, without building
    /// anything.
    pub fn validate(&self) -> Result<(), SolveError> {
        self.landscape.validate()?;
        if self.ps.is_empty() {
            return Err(invalid("ps", "error-rate grid must be non-empty".into()));
        }
        if let Some(bad) = self
            .ps
            .iter()
            .find(|p| !(p.is_finite() && **p > 0.0 && **p <= 0.5))
        {
            return Err(invalid(
                "p",
                format!("error rates must lie in (0, 1/2], got {bad}"),
            ));
        }
        if !(self.tol.is_finite() && self.tol > 0.0) {
            return Err(invalid(
                "tol",
                format!(
                    "residual tolerance must be finite and positive, got {}",
                    self.tol
                ),
            ));
        }
        if self.max_iter == 0 {
            return Err(invalid("max_iter", "iteration budget must be ≥ 1".into()));
        }
        Ok(())
    }

    /// Fold everything but `p` — the parts all points of this request
    /// share — into `h`.
    fn hash_shared(&self, h: &mut Fnv64) {
        self.landscape.hash_into(h);
        match self.method {
            Method::Power => h.write_u64(0),
            Method::Lanczos { subspace } => {
                h.write_u64(1);
                h.write_u64(subspace as u64);
            }
            Method::Rqi { warmup } => {
                h.write_u64(2);
                h.write_u64(warmup as u64);
            }
        }
        h.write_f64(self.tol);
    }

    /// The content address of the `(landscape, ν, p, method, tol)` point:
    /// the result cache's key. Exact bit patterns are hashed — `0.01`
    /// and `0.01 + ε` are different problems.
    pub fn cache_key(&self, p: f64) -> u64 {
        let mut h = Fnv64::new();
        self.hash_shared(&mut h);
        h.write_f64(p);
        h.finish()
    }

    /// The coalescing identity: requests with equal group keys differ at
    /// most in their error rates and can be answered by one batched
    /// engine run (each `p` becomes a column). Includes the iteration
    /// budget — columns of one block share it.
    pub fn group_key(&self) -> u64 {
        let mut h = Fnv64::new();
        self.hash_shared(&mut h);
        h.write_u64(self.max_iter as u64);
        h.finish()
    }

    /// Answer the request with a private, cold workspace.
    pub fn run(&self) -> Result<SolveResult, SolveError> {
        self.run_in(&mut Workspace::new())
    }

    /// Answer the request, drawing solver working memory from `ws`.
    ///
    /// [`Method::Power`] requests run the batched sweep path: one block
    /// power iteration over a [`QSweep`] operator whose columns are the
    /// request's error rates, so the FWHT stage sweeps are paid once per
    /// step for the whole grid. Repeated same-shape requests against a
    /// warmed `ws` run allocation-free (see
    /// [`Workspace::bytes_since_mark`]); park the returned concentration
    /// vectors back via [`SolveResult::recycle`] to keep the pool warm.
    /// Other methods fall back to one independent solve per point.
    ///
    /// # Errors
    ///
    /// [`SolveError::InvalidConfig`] from [`SolveRequest::validate`];
    /// [`SolveError::NotConverged`] if any point exhausts the budget.
    pub fn run_in(&self, ws: &mut Workspace) -> Result<SolveResult, SolveError> {
        self.validate()?;
        let landscape = self.landscape.build()?;
        let nu = landscape.nu();
        let (solutions, batched) = match self.method {
            Method::Power => (
                solve_uniform_sweep(landscape.as_ref(), &self.ps, self.tol, self.max_iter, ws)?,
                true,
            ),
            method => {
                let config = SolverConfig {
                    method,
                    tol: self.tol,
                    max_iter: self.max_iter,
                    engine: if self.parallel {
                        Engine::FmmpParallel
                    } else {
                        Engine::default()
                    },
                    ..Default::default()
                };
                let mut out = Vec::with_capacity(self.ps.len());
                for &p in &self.ps {
                    out.push(solve(p, landscape.as_ref(), &config)?);
                }
                (out, false)
            }
        };
        let points = self
            .ps
            .iter()
            .zip(solutions)
            .map(|(&p, solution)| PointResult {
                p,
                cache_key: self.cache_key(p),
                solution,
            })
            .collect();
        Ok(SolveResult {
            nu,
            batched,
            points,
        })
    }
}

/// One answered point of a [`SolveResult`].
#[derive(Debug, Clone)]
pub struct PointResult {
    /// The error rate this point was solved at.
    pub p: f64,
    /// Its content address (see [`SolveRequest::cache_key`]).
    pub cache_key: u64,
    /// The stationary distribution and its solve stats.
    pub solution: Quasispecies,
}

/// The answer to a [`SolveRequest`]: one [`PointResult`] per requested
/// error rate, in request order.
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// Chain length of the solved landscape.
    pub nu: u32,
    /// Whether the grid was answered by one batched engine run (`true`)
    /// or by independent per-point solves.
    pub batched: bool,
    /// Per-point answers, in request order.
    pub points: Vec<PointResult>,
}

impl SolveResult {
    /// Park every concentration vector back into `ws`, consuming the
    /// result. A serving loop that recycles each result after encoding
    /// it keeps the workspace warm enough that the next same-shape
    /// request allocates nothing.
    pub fn recycle(self, ws: &mut Workspace) {
        for point in self.points {
            ws.put(point.solution.concentrations);
        }
    }
}

/// Per-`p` mutation diagonal + shared [`QSweep`] spectral product: the
/// coalesced multi-rate operator. One diagonal pass per column plus a
/// single batched spectral product, so the two FWHT stage traversals are
/// shared by the whole grid. Batch-only by construction — a
/// single-vector application cannot know which `p_j` it belongs to.
struct SweepWOperator {
    sweep: QSweep,
    fitness: Vec<f64>,
}

impl LinearOperator for SweepWOperator {
    fn len(&self) -> usize {
        self.sweep.len()
    }

    fn apply_into(&self, _x: &[f64], _y: &mut [f64]) {
        unreachable!("the sweep operator is batch-only; use apply_batch")
    }

    fn flops_estimate(&self) -> f64 {
        self.sweep.flops_estimate() + (self.sweep.columns() * self.len()) as f64
    }

    fn apply_batch(&self, slab: &mut [f64]) {
        let n = self.len();
        assert_eq!(
            slab.len(),
            n * self.sweep.columns(),
            "apply_batch: slab must hold one column per sweep error rate"
        );
        for col in slab.chunks_exact_mut(n) {
            qs_linalg::vec_ops::apply_diagonal(&self.fitness, col);
        }
        self.sweep.apply_batch(slab);
    }
}

/// Solve the **uniform-model** stationary distribution at every rate in
/// `ps` through one batched block power iteration (the engine behind
/// both [`SolveRequest::run_in`] with [`Method::Power`] and
/// [`crate::threshold::scan_full_sweep`]). Working memory comes from
/// `ws`; one solution per rate, in grid order.
///
/// # Errors
///
/// [`SolveError::InvalidConfig`] on an empty grid, rates outside
/// `(0, 1/2]` or non-positive fitness values;
/// [`SolveError::NotConverged`] if any column exhausts `max_iter`.
pub(crate) fn solve_uniform_sweep<L: Landscape + ?Sized>(
    landscape: &L,
    ps: &[f64],
    tol: f64,
    max_iter: usize,
    ws: &mut Workspace,
) -> Result<Vec<Quasispecies>, SolveError> {
    if ps.is_empty() {
        return Err(SolveError::InvalidConfig {
            parameter: "ps",
            detail: "error-rate grid must be non-empty".into(),
        });
    }
    if let Some(bad) = ps
        .iter()
        .find(|p| !(p.is_finite() && **p > 0.0 && **p <= 0.5))
    {
        return Err(SolveError::InvalidConfig {
            parameter: "p",
            detail: format!("error rates must lie in (0, 1/2], got {bad}"),
        });
    }
    if !(tol.is_finite() && tol > 0.0) {
        return Err(SolveError::InvalidConfig {
            parameter: "tol",
            detail: format!("residual tolerance must be finite and positive, got {tol}"),
        });
    }
    let nu = landscape.nu();
    let fitness = landscape.materialize();
    if let Some(bad) = fitness.iter().find(|f| !(f.is_finite() && **f > 0.0)) {
        return Err(SolveError::InvalidConfig {
            parameter: "fitness",
            detail: format!("fitness values must be finite and strictly positive, found {bad}"),
        });
    }
    let n = fitness.len();
    let k = ps.len();

    // The paper's start vector, replicated into every pooled slab column.
    let mut start = ws.take_copy(&fitness);
    qs_linalg::vec_ops::normalize_l1(&mut start);
    let mut slab = ws.take(n * k);
    for col in slab.chunks_exact_mut(n) {
        col.copy_from_slice(&start);
    }
    ws.put(start);

    let op = SweepWOperator {
        sweep: QSweep::new(nu, ps),
        fitness,
    };
    let opts = PowerOptions {
        tol,
        max_iter,
        ..Default::default()
    };
    let block = block_power_iteration_in(&op, &slab, &opts, ws);
    ws.put(slab);

    let mut solutions = Vec::with_capacity(k);
    for col in block.columns {
        if !col.converged {
            return Err(SolveError::NotConverged {
                iterations: col.iterations,
                residual: col.residual,
            });
        }
        let stats = SolveStats {
            iterations: col.iterations,
            matvecs: col.matvecs,
            residual: col.residual,
            converged: true,
            engine: "QSweep".into(),
            method: "Pi-block".into(),
            shift: 0.0,
            degraded: false,
            recovered_from: None,
            deadline_expired: false,
            residual_history: None,
        };
        solutions.push(Quasispecies::from_right_eigenvector(
            col.lambda, col.vector, stats,
        ));
    }
    Ok(solutions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::ShiftStrategy;

    fn peak(nu: u32) -> LandscapeSpec {
        LandscapeSpec::SinglePeak {
            nu,
            f0: 2.0,
            f_rest: 1.0,
        }
    }

    #[test]
    fn specs_build_and_report_nu() {
        let specs = [
            peak(6),
            LandscapeSpec::Random {
                nu: 6,
                c: 5.0,
                sigma: 1.0,
                seed: 42,
            },
            LandscapeSpec::Nk {
                nu: 6,
                k: 2,
                seed: 42,
            },
            LandscapeSpec::ErrorClass {
                nu: 6,
                phi: vec![1.0; 7],
            },
            LandscapeSpec::Tabulated {
                fitness: vec![1.0; 64],
            },
        ];
        for spec in specs {
            let built = spec.build().unwrap();
            assert_eq!(built.nu(), 6, "{}", spec.kind());
            assert_eq!(spec.nu(), 6);
        }
    }

    #[test]
    fn malformed_specs_are_typed_errors_not_panics() {
        let cases = [
            LandscapeSpec::SinglePeak {
                nu: 6,
                f0: -1.0,
                f_rest: 1.0,
            },
            LandscapeSpec::SinglePeak {
                nu: 0,
                f0: 2.0,
                f_rest: 1.0,
            },
            LandscapeSpec::SinglePeak {
                nu: 64,
                f0: 2.0,
                f_rest: 1.0,
            },
            LandscapeSpec::Random {
                nu: 6,
                c: 5.0,
                sigma: 10.0,
                seed: 0,
            },
            LandscapeSpec::Nk {
                nu: 6,
                k: 6,
                seed: 0,
            },
            LandscapeSpec::ErrorClass {
                nu: 6,
                phi: vec![1.0; 3],
            },
            LandscapeSpec::Tabulated {
                fitness: vec![1.0; 63],
            },
            LandscapeSpec::Tabulated {
                fitness: vec![f64::NAN; 64],
            },
        ];
        for spec in cases {
            assert!(
                matches!(spec.build(), Err(SolveError::InvalidConfig { .. })),
                "{spec:?} must be rejected"
            );
        }
    }

    #[test]
    fn bad_request_knobs_are_typed_errors() {
        let mut req = SolveRequest::single(peak(6), 0.01);
        req.ps.clear();
        assert!(matches!(
            req.validate(),
            Err(SolveError::InvalidConfig {
                parameter: "ps",
                ..
            })
        ));
        let req = SolveRequest::single(peak(6), 0.7);
        assert!(matches!(
            req.validate(),
            Err(SolveError::InvalidConfig { parameter: "p", .. })
        ));
        let mut req = SolveRequest::single(peak(6), 0.01);
        req.tol = -1.0;
        assert!(matches!(
            req.validate(),
            Err(SolveError::InvalidConfig {
                parameter: "tol",
                ..
            })
        ));
        let mut req = SolveRequest::single(peak(6), 0.01);
        req.max_iter = 0;
        assert!(matches!(
            req.validate(),
            Err(SolveError::InvalidConfig {
                parameter: "max_iter",
                ..
            })
        ));
    }

    #[test]
    fn cache_keys_separate_every_dimension_of_the_problem() {
        // Every variation of (landscape, ν, p, method, tol) must land on
        // its own address; collisions would serve one problem's answer to
        // another.
        let base = SolveRequest::single(peak(8), 0.01);
        let mut variants: Vec<SolveRequest> = vec![base.clone()];
        variants.push(SolveRequest::single(peak(9), 0.01));
        variants.push(SolveRequest::single(
            LandscapeSpec::SinglePeak {
                nu: 8,
                f0: 2.5,
                f_rest: 1.0,
            },
            0.01,
        ));
        variants.push(SolveRequest::single(
            LandscapeSpec::Random {
                nu: 8,
                c: 5.0,
                sigma: 1.0,
                seed: 1,
            },
            0.01,
        ));
        variants.push(SolveRequest::single(
            LandscapeSpec::Random {
                nu: 8,
                c: 5.0,
                sigma: 1.0,
                seed: 2,
            },
            0.01,
        ));
        let mut m = base.clone();
        m.method = Method::Lanczos { subspace: 24 };
        variants.push(m);
        let mut m = base.clone();
        m.method = Method::Rqi { warmup: 5 };
        variants.push(m);
        let mut t = base.clone();
        t.tol = 1e-10;
        variants.push(t);

        let mut keys: Vec<u64> = Vec::new();
        for req in &variants {
            keys.push(req.cache_key(0.01));
        }
        // Distinct p values on the same request, including a one-ulp
        // neighbour.
        keys.push(base.cache_key(0.02));
        keys.push(base.cache_key(f64::from_bits(0.01f64.to_bits() + 1)));

        let unique: std::collections::HashSet<u64> = keys.iter().copied().collect();
        assert_eq!(unique.len(), keys.len(), "cache keys collided: {keys:?}");
    }

    #[test]
    fn group_key_ignores_p_but_tracks_the_rest() {
        let a = SolveRequest::single(peak(8), 0.01);
        let b = SolveRequest::single(peak(8), 0.04);
        assert_eq!(
            a.group_key(),
            b.group_key(),
            "requests differing only in p must coalesce"
        );
        assert_ne!(a.cache_key(0.01), b.cache_key(0.04));
        let mut c = a.clone();
        c.tol = 1e-9;
        assert_ne!(a.group_key(), c.group_key());
        let mut d = a.clone();
        d.max_iter += 1;
        assert_ne!(a.group_key(), d.group_key());
        // The scheduling hint is excluded from both keys by design.
        let mut e = a.clone();
        e.parallel = true;
        assert_eq!(a.group_key(), e.group_key());
        assert_eq!(a.cache_key(0.01), e.cache_key(0.01));
    }

    #[test]
    fn batched_run_matches_independent_solves_at_tolerance() {
        let req = SolveRequest::sweep(peak(7), vec![0.005, 0.01, 0.02, 0.04]);
        let result = req.run().unwrap();
        assert!(result.batched);
        assert_eq!(result.nu, 7);
        assert_eq!(result.points.len(), 4);
        let config = SolverConfig {
            tol: req.tol,
            max_iter: req.max_iter,
            shift: ShiftStrategy::None,
            ..Default::default()
        };
        let landscape = req.landscape.build().unwrap();
        for point in &result.points {
            let reference = solve(point.p, landscape.as_ref(), &config).unwrap();
            assert!(
                (point.solution.lambda - reference.lambda).abs() < 1e-9,
                "p = {}: λ {} vs {}",
                point.p,
                point.solution.lambda,
                reference.lambda
            );
            let sum: f64 = point.solution.concentrations.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(point.solution.stats.converged);
            assert_eq!(point.cache_key, req.cache_key(point.p));
        }
    }

    #[test]
    fn non_power_methods_fall_back_to_per_point_solves() {
        let mut req = SolveRequest::sweep(peak(6), vec![0.01, 0.02]);
        req.method = Method::Lanczos { subspace: 24 };
        let result = req.run().unwrap();
        assert!(!result.batched);
        assert_eq!(result.points.len(), 2);
        for point in &result.points {
            assert!(point.solution.stats.converged);
        }
    }

    #[test]
    fn repeat_runs_are_bit_identical() {
        let req = SolveRequest::sweep(peak(7), vec![0.01, 0.03]);
        let a = req.run().unwrap();
        let b = req.run().unwrap();
        for (x, y) in a.points.iter().zip(&b.points) {
            assert_eq!(x.solution.lambda.to_bits(), y.solution.lambda.to_bits());
            for (u, v) in x
                .solution
                .concentrations
                .iter()
                .zip(&y.solution.concentrations)
            {
                assert_eq!(u.to_bits(), v.to_bits());
            }
        }
    }

    #[test]
    fn warmed_workspace_serves_repeats_allocation_free() {
        let req = SolveRequest::sweep(peak(6), vec![0.01, 0.02, 0.03]);
        let mut ws = Workspace::new();
        // Warm-up request pays the pool misses once.
        req.run_in(&mut ws).unwrap().recycle(&mut ws);
        ws.mark();
        for _ in 0..3 {
            let result = req.run_in(&mut ws).unwrap();
            assert!(result.batched);
            result.recycle(&mut ws);
        }
        assert_eq!(
            ws.bytes_since_mark(),
            0,
            "steady-state batched serving must not touch the allocator"
        );
    }
}
