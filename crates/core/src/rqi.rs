//! Inverse iteration and Rayleigh-quotient iteration for the full `W`
//! eigenproblem — the method the paper sketches at the end of Section 3
//! and defers to future work, realised here with MINRES inner solves.
//!
//! On the symmetric formulation `S = F^½·Q·F^½`:
//!
//! * **inverse iteration** with a fixed shift `µ` repeatedly solves
//!   `(S − µI)·y = x` and converges to the eigenpair nearest `µ`
//!   (linearly, at rate `gap ratio`),
//! * **Rayleigh-quotient iteration** updates the shift to the current
//!   Rayleigh quotient every step and converges *cubically* near a pair.
//!
//! RQI converges to the eigenpair nearest its starting Rayleigh quotient,
//! which for the quasispecies problem must be the **dominant** one — so
//! the driver warms up with a few plain power-iteration steps (cheap
//! `Θ(N log N)` applications) before switching to RQI's expensive but
//! cubically convergent outer steps. Each inner MINRES iteration is one
//! `Fmmp` application, so everything stays matrix-free.

use std::time::Instant;

use crate::checkpoint::CheckpointSession;
use crate::guard::Breakdown;
use crate::krylov::{minres_probed, MinresOptions};
use crate::solver::SolveError;
use qs_linalg::vec_ops::{normalize_l2, orient_positive, sub_scaled_into};
use qs_linalg::{dot, norm_l2};
use qs_matvec::{LinearOperator, ShiftedOp};
use qs_telemetry::{NullProbe, Probe, SolverEvent};

/// Options for [`rayleigh_quotient_iteration`].
#[derive(Debug, Clone, Copy)]
pub struct RqiOptions {
    /// Residual tolerance on `‖S·x − ρ·x‖₂`.
    pub tol: f64,
    /// Plain power-iteration warm-up steps before the first RQI step
    /// (steers the Rayleigh quotient next to λ₀).
    pub warmup: usize,
    /// Maximum RQI (outer) steps.
    pub max_outer: usize,
    /// Relative tolerance of each inner MINRES solve (loose is fine: the
    /// inverse-iteration direction dominates long before full accuracy).
    pub inner_tol: f64,
    /// Inner iteration cap per outer step.
    pub inner_max: usize,
    /// Wall-clock deadline, threaded into the inner MINRES solves as
    /// well: when it expires the current outer iterate is returned with
    /// `timed_out` set instead of erroring. `None` disables the check
    /// (the clock is never read, keeping the run bit-identical).
    pub deadline: Option<Instant>,
}

impl Default for RqiOptions {
    fn default() -> Self {
        RqiOptions {
            tol: 1e-12,
            warmup: 10,
            max_outer: 12,
            inner_tol: 1e-8,
            inner_max: 2_000,
            deadline: None,
        }
    }
}

/// Outcome of an RQI run.
#[derive(Debug, Clone)]
pub struct RqiOutcome {
    /// The converged Rayleigh quotient (≈ λ of the targeted eigenpair).
    pub lambda: f64,
    /// Unit eigenvector, Perron-oriented.
    pub vector: Vec<f64>,
    /// Outer RQI steps taken (excluding warm-up).
    pub outer_iterations: usize,
    /// Total operator applications (warm-up + all inner MINRES steps +
    /// residual checks).
    pub matvecs: usize,
    /// Final residual `‖S·x − ρ·x‖₂`.
    pub residual: f64,
    /// Whether `tol` was met.
    pub converged: bool,
    /// Set when a guardrail stopped the run: the warm-up or outer iterate
    /// collapsed / went non-finite, or the inner MINRES solve broke down.
    /// `None` for convergence or honest outer-budget exhaustion.
    pub breakdown: Option<Breakdown>,
    /// `true` when the wall-clock deadline expired before convergence;
    /// the outcome carries the best iterate evaluated so far.
    pub timed_out: bool,
}

/// Rayleigh-quotient iteration on a **symmetric** operator, warm-started
/// with plain power iteration.
///
/// # Errors
///
/// Returns [`SolveError::InvalidConfig`] if `opts.inner_tol` is not a
/// finite positive number (it parameterises the inner MINRES solves).
///
/// # Panics
///
/// Panics on a zero start vector or length mismatch.
pub fn rayleigh_quotient_iteration<A: LinearOperator + ?Sized>(
    a: &A,
    start: &[f64],
    opts: &RqiOptions,
) -> Result<RqiOutcome, SolveError> {
    rayleigh_quotient_iteration_probed(a, start, opts, &mut NullProbe)
}

/// [`rayleigh_quotient_iteration`] with a telemetry [`Probe`].
///
/// Each outer RQI step emits [`SolverEvent::IterationStart`] and an outer
/// [`SolverEvent::Residual`] with the current Rayleigh quotient; the probe
/// is threaded through the inner MINRES solves too, so their per-iteration
/// residual estimates (tagged `lambda: 0.0`) and matvec timings appear
/// between the outer markers. The run ends with
/// [`SolverEvent::Converged`]/[`SolverEvent::Budget`]. With a disabled
/// probe the arithmetic is bit-for-bit that of
/// [`rayleigh_quotient_iteration`].
pub fn rayleigh_quotient_iteration_probed<A: LinearOperator + ?Sized, P: Probe>(
    a: &A,
    start: &[f64],
    opts: &RqiOptions,
    probe: &mut P,
) -> Result<RqiOutcome, SolveError> {
    rqi_core(a, start, opts, probe, None)
}

/// [`rayleigh_quotient_iteration_probed`] with a durable
/// [`CheckpointSession`]: outer residuals feed the session history and
/// the unit outer iterate is snapshotted on the session's cadence.
/// Resume is a warm restart — load the snapshot, pass its iterate as
/// `start` with `warmup: 0`, and RQI re-converges from there.
pub fn rayleigh_quotient_iteration_durable<A: LinearOperator + ?Sized, P: Probe>(
    a: &A,
    start: &[f64],
    opts: &RqiOptions,
    probe: &mut P,
    session: &mut CheckpointSession,
) -> Result<RqiOutcome, SolveError> {
    rqi_core(a, start, opts, probe, Some(session))
}

fn rqi_core<A: LinearOperator + ?Sized, P: Probe>(
    a: &A,
    start: &[f64],
    opts: &RqiOptions,
    probe: &mut P,
    mut durable: Option<&mut CheckpointSession>,
) -> Result<RqiOutcome, SolveError> {
    assert_eq!(start.len(), a.len(), "rqi: start length mismatch");
    let n = a.len();
    let mut x = start.to_vec();
    assert!(normalize_l2(&mut x) > 0.0, "rqi: zero start vector");

    let mut ax = vec![0.0; n];
    let mut r = vec![0.0; n];
    let mut matvecs = 0usize;
    let mut breakdown = None;

    // Warm-up: steer toward the dominant eigenvector.
    for _ in 0..opts.warmup {
        if probe.enabled() {
            a.apply_into_probed(&x, &mut ax, &mut *probe);
        } else {
            a.apply_into(&x, &mut ax);
        }
        matvecs += 1;
        let norm = norm_l2(&ax);
        if !(norm.is_finite() && norm > 0.0) {
            // Guardrail: a poisoned matvec or an exact collapse — keep the
            // last finite iterate instead of panicking.
            breakdown = Some(Breakdown::IterateCollapse);
            probe.record(&SolverEvent::GuardrailTripped {
                kind: Breakdown::IterateCollapse.label(),
                iter: 0,
            });
            break;
        }
        for (xi, &yi) in x.iter_mut().zip(&ax) {
            *xi = yi / norm;
        }
    }

    let mut rho = f64::NAN;
    let mut residual = f64::NAN;
    let mut outer = 0usize;
    let mut converged = false;
    let mut timed_out = false;

    if breakdown.is_none() {
        // Evaluate the warm-started pair.
        if probe.enabled() {
            a.apply_into_probed(&x, &mut ax, &mut *probe);
        } else {
            a.apply_into(&x, &mut ax);
        }
        matvecs += 1;
        rho = dot(&x, &ax);
        sub_scaled_into(&ax, rho, &x, &mut r);
        residual = norm_l2(&r);
        probe.record(&SolverEvent::Residual {
            iter: 0,
            value: residual,
            lambda: rho,
        });
        if let Some(session) = durable.as_deref_mut() {
            session.push_residual(residual);
        }
        if !rho.is_finite() || !residual.is_finite() {
            breakdown = Some(Breakdown::NonFiniteIterate);
            probe.record(&SolverEvent::GuardrailTripped {
                kind: Breakdown::NonFiniteIterate.label(),
                iter: 0,
            });
        } else {
            converged = residual <= opts.tol;
        }
    }

    while breakdown.is_none() && !converged && !timed_out && outer < opts.max_outer {
        outer += 1;
        probe.record(&SolverEvent::IterationStart { iter: outer });
        // Inverse-iteration step with the Rayleigh shift: near-singular by
        // construction; MINRES's minimal-residual iterate blows up along
        // the target eigen-direction, which is exactly what we normalise.
        let shifted = ShiftedOp::new(a, rho);
        let inner = minres_probed(
            &shifted,
            &x,
            &MinresOptions {
                tol: opts.inner_tol,
                max_iter: opts.inner_max,
                deadline: opts.deadline,
            },
            &mut *probe,
        )?;
        matvecs += inner.iterations;
        if let Some(b) = inner.breakdown {
            // MINRES already recorded its own guardrail event.
            breakdown = Some(b);
            break;
        }
        let y_norm = norm_l2(&inner.x);
        if !(y_norm.is_finite() && y_norm > 0.0) {
            // Inner solve failed to produce a direction.
            breakdown = Some(Breakdown::IterateCollapse);
            probe.record(&SolverEvent::GuardrailTripped {
                kind: Breakdown::IterateCollapse.label(),
                iter: outer,
            });
            break;
        }
        for (xi, &yi) in x.iter_mut().zip(&inner.x) {
            *xi = yi / y_norm;
        }
        if probe.enabled() {
            a.apply_into_probed(&x, &mut ax, &mut *probe);
        } else {
            a.apply_into(&x, &mut ax);
        }
        matvecs += 1;
        rho = dot(&x, &ax);
        sub_scaled_into(&ax, rho, &x, &mut r);
        residual = norm_l2(&r);
        probe.record(&SolverEvent::Residual {
            iter: outer,
            value: residual,
            lambda: rho,
        });
        if !rho.is_finite() || !residual.is_finite() {
            breakdown = Some(Breakdown::NonFiniteIterate);
            probe.record(&SolverEvent::GuardrailTripped {
                kind: Breakdown::NonFiniteIterate.label(),
                iter: outer,
            });
            break;
        }
        if let Some(session) = durable.as_deref_mut() {
            session.push_residual(residual);
            if session.due(outer as u64) {
                match session.write_snapshot(outer as u64, matvecs as u64, (f64::INFINITY, 0), &x) {
                    Ok(bytes) => {
                        probe.record(&SolverEvent::CheckpointWritten { iter: outer, bytes })
                    }
                    Err(_) => probe.record(&SolverEvent::CheckpointRejected {
                        reason: "write_failed",
                    }),
                }
            }
        }
        converged = residual <= opts.tol;
        if !converged
            && opts
                .deadline
                .is_some_and(|deadline| Instant::now() >= deadline)
        {
            timed_out = true;
        }
    }

    orient_positive(&mut x);
    if converged {
        probe.record(&SolverEvent::Converged {
            iterations: outer,
            matvecs,
            residual,
            lambda: rho,
        });
    } else {
        probe.record(&SolverEvent::Budget {
            iterations: outer,
            matvecs,
            residual,
        });
    }
    Ok(RqiOutcome {
        lambda: rho,
        vector: x,
        outer_iterations: outer,
        matvecs,
        residual,
        converged,
        breakdown,
        timed_out,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::{power_iteration, PowerOptions};
    use qs_landscape::{Landscape, Random};
    use qs_matvec::{Fmmp, Formulation, WOperator};

    fn sym_problem(nu: u32, p: f64, seed: u64) -> (WOperator<Fmmp>, Vec<f64>) {
        let landscape = Random::new(nu, 5.0, 1.0, seed);
        let w = WOperator::from_landscape(Fmmp::new(nu, p), &landscape, Formulation::Symmetric);
        let start: Vec<f64> = landscape.materialize().iter().map(|f| f.sqrt()).collect();
        (w, start)
    }

    #[test]
    fn converges_to_dominant_pair() {
        let (w, start) = sym_problem(9, 0.01, 5);
        let rqi = rayleigh_quotient_iteration(&w, &start, &RqiOptions::default()).unwrap();
        assert!(rqi.converged, "residual {}", rqi.residual);
        let pi = power_iteration(
            &w,
            &start,
            &PowerOptions {
                tol: 1e-12,
                ..Default::default()
            },
        );
        assert!(
            (rqi.lambda - pi.lambda).abs() < 1e-9,
            "{} vs {}",
            rqi.lambda,
            pi.lambda
        );
        let cos = qs_linalg::dot(&rqi.vector, &pi.vector).abs();
        assert!(cos > 1.0 - 1e-8);
    }

    #[test]
    fn cubic_convergence_needs_few_outer_steps() {
        let (w, start) = sym_problem(10, 0.02, 8);
        let rqi = rayleigh_quotient_iteration(&w, &start, &RqiOptions::default()).unwrap();
        assert!(rqi.converged);
        assert!(
            rqi.outer_iterations <= 5,
            "RQI took {} outer steps — cubic convergence lost",
            rqi.outer_iterations
        );
    }

    #[test]
    fn residual_is_self_consistent() {
        let (w, start) = sym_problem(8, 0.03, 2);
        let rqi = rayleigh_quotient_iteration(&w, &start, &RqiOptions::default()).unwrap();
        let ax = w.apply(&rqi.vector);
        let mut r = vec![0.0; ax.len()];
        qs_linalg::vec_ops::sub_scaled_into(&ax, rqi.lambda, &rqi.vector, &mut r);
        let tr = qs_linalg::norm_l2(&r);
        assert!((tr - rqi.residual).abs() < 1e-12 + rqi.residual * 1e-6);
    }

    #[test]
    fn zero_warmup_converges_to_some_eigenpair() {
        // Without warm-up RQI converges to the eigenpair nearest the
        // start's Rayleigh quotient — possibly an *interior* one (that is
        // precisely why the driver warms up). Assert the documented
        // contract: a converged, self-consistent eigenpair of the operator.
        let (w, start) = sym_problem(8, 0.01, 11);
        let rqi = rayleigh_quotient_iteration(
            &w,
            &start,
            &RqiOptions {
                warmup: 0,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(rqi.converged, "residual {}", rqi.residual);
        let ax = w.apply(&rqi.vector);
        for (a, b) in ax.iter().zip(&rqi.vector) {
            assert!((a - rqi.lambda * b).abs() < 1e-9);
        }
        // And with the default warm-up, the *dominant* pair is found even
        // from this start.
        let warmed = rayleigh_quotient_iteration(&w, &start, &RqiOptions::default()).unwrap();
        let pi = power_iteration(
            &w,
            &start,
            &PowerOptions {
                tol: 1e-12,
                ..Default::default()
            },
        );
        assert!((warmed.lambda - pi.lambda).abs() < 1e-8);
        assert!(warmed.lambda >= rqi.lambda - 1e-10);
    }

    #[test]
    fn probed_run_matches_plain_bit_for_bit() {
        use qs_telemetry::{RecordingProbe, SolverEvent};
        let (w, start) = sym_problem(8, 0.02, 6);
        let opts = RqiOptions::default();
        let plain = rayleigh_quotient_iteration(&w, &start, &opts).unwrap();
        let mut rec = RecordingProbe::new();
        let probed = rayleigh_quotient_iteration_probed(&w, &start, &opts, &mut rec).unwrap();
        assert_eq!(plain.lambda.to_bits(), probed.lambda.to_bits());
        assert_eq!(plain.residual.to_bits(), probed.residual.to_bits());
        assert_eq!(plain.matvecs, probed.matvecs);
        assert_eq!(plain.outer_iterations, probed.outer_iterations);
        // Outer residuals and inner MINRES estimates interleave; the last
        // one recorded is the outer residual the outcome reports.
        let history = rec.residual_history();
        assert!(!history.is_empty());
        assert_eq!(history.last().unwrap().to_bits(), probed.residual.to_bits());
        assert_eq!(rec.iterations(), probed.outer_iterations);
        match rec.terminal() {
            Some(&SolverEvent::Converged { matvecs, .. }) => {
                assert_eq!(matvecs, probed.matvecs);
            }
            other => panic!("expected Converged, got {other:?}"),
        }
    }

    #[test]
    fn already_converged_start_takes_zero_outer_steps() {
        let (w, start) = sym_problem(7, 0.02, 3);
        let pi = power_iteration(
            &w,
            &start,
            &PowerOptions {
                tol: 1e-13,
                ..Default::default()
            },
        );
        let rqi = rayleigh_quotient_iteration(
            &w,
            &pi.vector,
            &RqiOptions {
                warmup: 0,
                tol: 1e-10,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(rqi.converged);
        assert_eq!(rqi.outer_iterations, 0);
    }

    #[test]
    fn invalid_inner_tolerance_is_a_typed_error() {
        let (w, start) = sym_problem(6, 0.02, 1);
        let err = rayleigh_quotient_iteration(
            &w,
            &start,
            &RqiOptions {
                inner_tol: -1.0,
                // Force at least one outer step so the inner solve runs.
                tol: 0.0,
                warmup: 0,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(
            err,
            crate::solver::SolveError::InvalidConfig {
                parameter: "tol",
                ..
            }
        ));
    }

    #[test]
    fn nan_matvec_during_warmup_classifies_breakdown_without_panic() {
        struct NanAfter<A> {
            inner: A,
            from: usize,
            count: std::sync::atomic::AtomicUsize,
        }
        impl<A: LinearOperator> LinearOperator for NanAfter<A> {
            fn len(&self) -> usize {
                self.inner.len()
            }
            fn apply_into(&self, x: &[f64], y: &mut [f64]) {
                self.inner.apply_into(x, y);
                if self
                    .count
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
                    >= self.from
                {
                    y[0] = f64::NAN;
                }
            }
        }
        let (w, start) = sym_problem(7, 0.02, 4);
        let poisoned = NanAfter {
            inner: w,
            from: 2,
            count: Default::default(),
        };
        let rqi = rayleigh_quotient_iteration(&poisoned, &start, &RqiOptions::default()).unwrap();
        assert!(!rqi.converged);
        assert!(rqi.breakdown.is_some(), "breakdown not classified");
    }
}
