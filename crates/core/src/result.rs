//! The solved quasispecies: stationary concentrations and derived
//! observables.

use serde::{Deserialize, Serialize};

/// Start-vector provenance of a warm-started column: where the seed came
/// from and the iteration savings attributed to it.
///
/// A warm-started solve converges to the same residual tolerance as a
/// cold one but is **not bit-identical** to it — the iterate path
/// differs. Consumers that need bit-reproducible fresh computations must
/// opt out via `SolveRequest::scheduling`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WarmStartInfo {
    /// Seed source: `"continuation"` when the start vector was
    /// interpolated from columns already converged in the same sweep,
    /// `"cache"` when it came from a serving layer's eigenvector
    /// warm-start cache.
    pub source: String,
    /// Error rate of the nearest converged point the seed drew on.
    pub from_p: f64,
    /// Estimated iterations avoided versus a cold start. The baseline is
    /// the nearest cold-started column of the same run (a documented
    /// estimate, not a measurement); `0` when no cold baseline exists.
    pub iterations_saved: usize,
}

/// Diagnostics of a solver run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SolveStats {
    /// Outer iterations of the eigensolver.
    pub iterations: usize,
    /// Operator applications (matvec count).
    pub matvecs: usize,
    /// Final residual `‖Wx̃ − λ̃x̃‖₂`.
    pub residual: f64,
    /// Whether the residual tolerance was met.
    pub converged: bool,
    /// Engine label (e.g. `"Fmmp"`, `"Xmvp(5)"`).
    pub engine: String,
    /// Method label (e.g. `"Pi"`, `"Pi+shift"`, `"Lanczos"`).
    pub method: String,
    /// Spectral shift used (0 if none).
    pub shift: f64,
    /// `true` when the solve broke down, the recovery ladder could not
    /// converge any method, and the result is the best-so-far iterate:
    /// still a valid L1-normalised non-negative distribution, but its
    /// residual did not meet the tolerance.
    #[serde(default)]
    pub degraded: bool,
    /// When the solve broke down but a restart or fallback method later
    /// converged (or a degraded result was handed back), the `snake_case`
    /// classification of the original breakdown; `None` for clean solves.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub recovered_from: Option<String>,
    /// `true` when the solve stopped because its wall-clock deadline
    /// expired (see `SolverConfig::deadline`): the result is the
    /// best-so-far iterate — a valid distribution, flagged `degraded`
    /// when above tolerance — rather than an error.
    #[serde(default)]
    pub deadline_expired: bool,
    /// Per-iteration residual trajectory, recorded only when the solve ran
    /// with an enabled telemetry probe (`solve_probed` and friends); `None`
    /// otherwise, and omitted from serialised output. Capped at
    /// `SolverConfig::history_cap` entries by uniform downsampling.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub residual_history: Option<Vec<f64>>,
    /// Start-vector provenance when this solve was warm-started by the
    /// continuation ladder or an eigenvector cache; `None` for cold
    /// starts.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub warm_start: Option<WarmStartInfo>,
}

/// Uniformly downsample `values` in place to at most `cap` entries
/// (`cap = 0` means unlimited and is a no-op).
///
/// Every `stride`-th element is kept walking *backwards* from the last
/// element, then order is restored — so the most recent measurement
/// always survives (consumers rely on `history.last()` matching the
/// final residual) and the kept samples are evenly spaced.
pub fn downsample_uniform(values: &mut Vec<f64>, cap: usize) {
    if cap == 0 || values.len() <= cap {
        return;
    }
    let stride = values.len().div_ceil(cap);
    let mut kept: Vec<f64> = values.iter().rev().step_by(stride).copied().collect();
    kept.reverse();
    *values = kept;
}

/// A computed quasispecies: the dominant eigenpair of `W = Q·F` with the
/// eigenvector expressed as relative concentrations (`Σᵢ xᵢ = 1`,
/// `xᵢ ≥ 0` by Perron–Frobenius).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Quasispecies {
    /// Dominant eigenvalue `λ₀` (the population's mean replication rate at
    /// stationarity).
    pub lambda: f64,
    /// Stationary relative concentrations `x_R`, L1-normalised.
    pub concentrations: Vec<f64>,
    /// Solver diagnostics.
    pub stats: SolveStats,
}

impl Quasispecies {
    /// Assemble from a raw eigenvector in the **right** formulation
    /// (normalises to `Σ x = 1` and clamps the tiny negative round-off
    /// values Perron–Frobenius says cannot truly occur).
    ///
    /// # Panics
    ///
    /// Panics if the vector length is not a power of two or the vector
    /// sums to zero.
    pub fn from_right_eigenvector(lambda: f64, mut x: Vec<f64>, stats: SolveStats) -> Self {
        assert!(
            x.len().is_power_of_two() && x.len() >= 2,
            "eigenvector length must be 2^ν"
        );
        qs_linalg::vec_ops::orient_positive(&mut x);
        for v in &mut x {
            // Round-off may leave ≈ −1e-17 entries; physical concentrations
            // are non-negative.
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        let norm = qs_linalg::norm_l1(&x);
        assert!(norm > 0.0, "eigenvector sums to zero");
        for v in &mut x {
            *v /= norm;
        }
        Quasispecies {
            lambda,
            concentrations: x,
            stats,
        }
    }

    /// Chain length `ν`.
    pub fn nu(&self) -> u32 {
        self.concentrations.len().trailing_zeros()
    }

    /// Dimension `N = 2^ν`.
    pub fn len(&self) -> usize {
        self.concentrations.len()
    }

    /// Solutions are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Concentration of sequence `i`.
    pub fn concentration(&self, i: u64) -> f64 {
        self.concentrations[i as usize]
    }

    /// The most concentrated sequence (the quasispecies' centre).
    pub fn dominant_sequence(&self) -> u64 {
        let mut best = 0usize;
        for (i, &c) in self.concentrations.iter().enumerate() {
            if c > self.concentrations[best] {
                best = i;
            }
        }
        best as u64
    }

    /// Cumulative error-class concentrations
    /// `[Γ_k] = Σ_{j∈Γ_k} x_j` for `k = 0..=ν` — the series paper Figure 1
    /// plots against the error rate.
    pub fn error_class_concentrations(&self) -> Vec<f64> {
        qs_bitseq::accumulate_classes(&self.concentrations)
    }

    /// Shannon entropy `−Σ xᵢ ln xᵢ` (nats) of the stationary
    /// distribution: `0` for a single surviving sequence, `ν·ln 2` for the
    /// uniform distribution past the error threshold.
    pub fn entropy(&self) -> f64 {
        let mut acc = qs_linalg::NeumaierSum::new();
        for &x in &self.concentrations {
            if x > 0.0 {
                acc.add(-x * x.ln());
            }
        }
        acc.value()
    }

    /// L1 distance to the uniform distribution — the order parameter the
    /// error-threshold detector tracks (drops to ≈ 0 past `p_max`).
    pub fn distance_to_uniform(&self) -> f64 {
        let u = 1.0 / self.len() as f64;
        let mut acc = qs_linalg::NeumaierSum::new();
        for &x in &self.concentrations {
            acc.add((x - u).abs());
        }
        acc.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> SolveStats {
        SolveStats {
            iterations: 1,
            matvecs: 1,
            residual: 0.0,
            converged: true,
            engine: "test".into(),
            method: "test".into(),
            shift: 0.0,
            degraded: false,
            recovered_from: None,
            deadline_expired: false,
            residual_history: None,
            warm_start: None,
        }
    }

    #[test]
    fn downsample_keeps_the_last_element_and_respects_the_cap() {
        for len in 1..200usize {
            for cap in 1..24usize {
                let mut v: Vec<f64> = (0..len).map(|i| i as f64).collect();
                downsample_uniform(&mut v, cap);
                assert!(v.len() <= cap, "len {len} cap {cap} kept {}", v.len());
                assert_eq!(*v.last().unwrap(), (len - 1) as f64);
                // Still in increasing (original) order.
                assert!(v.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    #[test]
    fn downsample_is_a_no_op_under_the_cap_or_unlimited() {
        let mut v: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let original = v.clone();
        downsample_uniform(&mut v, 50);
        assert_eq!(v, original);
        downsample_uniform(&mut v, 0);
        assert_eq!(v, original);
    }

    #[test]
    fn normalises_and_orients() {
        let q = Quasispecies::from_right_eigenvector(1.5, vec![-3.0, -1.0, 0.0, 0.0], stats());
        assert!((q.concentrations[0] - 0.75).abs() < 1e-15);
        assert!((q.concentrations[1] - 0.25).abs() < 1e-15);
        let total: f64 = q.concentrations.iter().sum();
        assert!((total - 1.0).abs() < 1e-15);
        assert_eq!(q.dominant_sequence(), 0);
        assert_eq!(q.nu(), 2);
    }

    #[test]
    fn clamps_round_off_negatives() {
        let q = Quasispecies::from_right_eigenvector(1.0, vec![1.0, -1e-18], stats());
        assert_eq!(q.concentration(1), 0.0);
        assert!(q.concentrations.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn entropy_extremes() {
        let delta = Quasispecies::from_right_eigenvector(1.0, vec![1.0, 0.0, 0.0, 0.0], stats());
        assert_eq!(delta.entropy(), 0.0);
        let uniform = Quasispecies::from_right_eigenvector(1.0, vec![0.25; 4], stats());
        assert!((uniform.entropy() - (4.0f64).ln()).abs() < 1e-14);
    }

    #[test]
    fn distance_to_uniform_extremes() {
        let uniform = Quasispecies::from_right_eigenvector(1.0, vec![0.25; 4], stats());
        assert!(uniform.distance_to_uniform() < 1e-15);
        let delta = Quasispecies::from_right_eigenvector(1.0, vec![1.0, 0.0, 0.0, 0.0], stats());
        // ‖δ − u‖₁ = (1 − 1/4) + 3·(1/4) = 1.5.
        assert!((delta.distance_to_uniform() - 1.5).abs() < 1e-15);
    }

    #[test]
    fn class_concentrations_sum_to_one() {
        let x = vec![0.4, 0.2, 0.2, 0.1, 0.05, 0.025, 0.02, 0.005];
        let q = Quasispecies::from_right_eigenvector(1.0, x, stats());
        let gamma = q.error_class_concentrations();
        assert_eq!(gamma.len(), 4);
        let total: f64 = gamma.iter().sum();
        assert!((total - 1.0).abs() < 1e-14);
        assert!((gamma[0] - 0.4).abs() < 1e-15);
        // Γ₁ = {1, 2, 4}.
        assert!((gamma[1] - (0.2 + 0.2 + 0.05)).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "2^ν")]
    fn rejects_bad_length() {
        let _ = Quasispecies::from_right_eigenvector(1.0, vec![1.0; 3], stats());
    }
}
