//! Reusable buffer pool for the solver hot path.
//!
//! The power-iteration working set is three `N`-vectors (iterate, image,
//! residual) plus an occasional verification buffer. Allocating them fresh
//! for every attempt — and, before the fused kernels became plan-inline,
//! for every *apply* — put the allocator on the per-solve critical path.
//! [`Workspace`] recycles those buffers instead: [`Workspace::take`]
//! prefers a pooled buffer and only falls back to the allocator on a pool
//! miss, counting every missed byte so a solve can report (and tests can
//! pin) its steady-state allocation cost.
//!
//! The accounting is deliberately simple and observable without a global
//! allocator hook: `bytes_allocated` is exactly `8 × Σ len` over pool
//! misses. A solve that warms the pool first and then reports zero
//! [`Workspace::bytes_since_mark`] provably never grew its working set.

/// Cache-line alignment (in bytes) targeted by [`AlignedVec`]: one 64-byte
/// line holds a full AVX-512 lane (8 × `f64`), so an aligned span never
/// splits a SIMD load across lines.
pub const LANE_ALIGN: usize = 64;

/// Extra `f64` slots an [`AlignedVec`] over-allocates so an aligned window
/// of the requested length always fits (`LANE_ALIGN / 8 - 1`).
const ALIGN_PAD: usize = LANE_ALIGN / core::mem::size_of::<f64>() - 1;

/// An owned `f64` buffer whose data window is 64-byte aligned, built from
/// safe Rust only: the backing `Vec` over-allocates by `ALIGN_PAD` slots
/// and the window starts at `align_offset(LANE_ALIGN)`. The SIMD fibre
/// kernels in `qs-matvec` tolerate unaligned spans (they use unaligned
/// loads), but an aligned base keeps every span of a power-of-two schedule
/// on cache-line boundaries, which is what the wide paths are tuned for.
///
/// Dereferences to `[f64]`; recycle it through
/// [`Workspace::put_aligned`] and take it back via
/// [`Workspace::take_aligned`].
#[derive(Debug, Clone)]
pub struct AlignedVec {
    buf: Vec<f64>,
    offset: usize,
    len: usize,
}

impl AlignedVec {
    /// A zeroed aligned buffer of length `n`.
    pub fn new(n: usize) -> Self {
        Self::from_vec(Vec::with_capacity(n + ALIGN_PAD), n)
    }

    /// Re-window `buf` (cleared and zero-filled) into an aligned buffer of
    /// length `n`, reusing its allocation when the capacity suffices.
    fn from_vec(mut buf: Vec<f64>, n: usize) -> Self {
        buf.clear();
        buf.resize(n + ALIGN_PAD, 0.0);
        // `align_offset` counts in elements; for 8-byte elements against a
        // 64-byte target it is always in `0..=ALIGN_PAD` (the `MAX`
        // escape hatch cannot trigger for power-of-two sizes, but degrade
        // to an unaligned window rather than panic if it ever did).
        let offset = buf.as_ptr().align_offset(LANE_ALIGN);
        let offset = if offset > ALIGN_PAD { 0 } else { offset };
        AlignedVec {
            buf,
            offset,
            len: n,
        }
    }

    /// Length of the aligned window.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the window's base pointer really is 64-byte aligned (always
    /// true in practice; see `AlignedVec::from_vec`).
    pub fn is_lane_aligned(&self) -> bool {
        self.as_slice().as_ptr() as usize % LANE_ALIGN == 0
    }

    /// The aligned window.
    pub fn as_slice(&self) -> &[f64] {
        &self.buf[self.offset..self.offset + self.len]
    }

    /// The aligned window, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.buf[self.offset..self.offset + self.len]
    }

    /// Give up alignment and recover the backing `Vec` (window contents
    /// first, padding truncated away — the data may shift to index 0).
    pub fn into_vec(mut self) -> Vec<f64> {
        self.buf.copy_within(self.offset..self.offset + self.len, 0);
        self.buf.truncate(self.len);
        self.buf
    }
}

impl core::ops::Deref for AlignedVec {
    type Target = [f64];
    fn deref(&self) -> &[f64] {
        self.as_slice()
    }
}

impl core::ops::DerefMut for AlignedVec {
    fn deref_mut(&mut self) -> &mut [f64] {
        self.as_mut_slice()
    }
}

/// A pool of reusable `f64` buffers with pool-miss byte accounting.
///
/// Buffers move out via [`Workspace::take`] / [`Workspace::take_copy`] and
/// back in via [`Workspace::put`]; they are ordinary `Vec<f64>`s, so a
/// result vector can simply escape the pool when it outlives the solve.
#[derive(Debug, Default)]
pub struct Workspace {
    pool: Vec<Vec<f64>>,
    /// Index/bookkeeping buffers (column owner maps, freeze states) pooled
    /// separately from the `f64` pool so the two element types never trade
    /// allocations.
    index_pool: Vec<Vec<usize>>,
    bytes_allocated: u64,
    mark: u64,
}

impl Workspace {
    /// An empty, cold pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// A zeroed buffer of length `n`: pooled if any parked buffer has the
    /// capacity, freshly allocated (and counted) otherwise. Matching is
    /// best-fit (smallest adequate capacity), so small bookkeeping takes
    /// cannot strip the pool of the large buffers a later column-sized
    /// take needs — the property that keeps a warmed pool's steady state
    /// at zero misses when one solve mixes buffer sizes.
    pub fn take(&mut self, n: usize) -> Vec<f64> {
        match best_fit(&self.pool, n) {
            Some(i) => {
                let mut b = self.pool.swap_remove(i);
                b.clear();
                b.resize(n, 0.0);
                b
            }
            None => {
                self.bytes_allocated += 8 * n as u64;
                vec![0.0; n]
            }
        }
    }

    /// A buffer holding a copy of `src` (same pooling rules as
    /// [`Workspace::take`]).
    pub fn take_copy(&mut self, src: &[f64]) -> Vec<f64> {
        let mut b = self.take(src.len());
        b.copy_from_slice(src);
        b
    }

    /// Park a buffer for reuse.
    pub fn put(&mut self, buf: Vec<f64>) {
        if buf.capacity() > 0 {
            self.pool.push(buf);
        }
    }

    /// Pre-allocate `count` buffers of length `n` so subsequent
    /// [`Workspace::take`] **and** [`Workspace::take_aligned`] calls of
    /// that size hit the pool (warmed buffers carry the alignment padding,
    /// which plain takes simply leave unused).
    pub fn warm(&mut self, n: usize, count: usize) {
        let held: Vec<_> = (0..count).map(|_| self.take_aligned(n)).collect();
        for b in held {
            self.put_aligned(b);
        }
    }

    /// A zeroed [`AlignedVec`] of length `n`: pooled if any parked buffer
    /// can hold the padded window, freshly allocated (and counted as
    /// `8 × (n + pad)` miss bytes) otherwise.
    pub fn take_aligned(&mut self, n: usize) -> AlignedVec {
        let padded = n + ALIGN_PAD;
        match best_fit(&self.pool, padded) {
            Some(i) => AlignedVec::from_vec(self.pool.swap_remove(i), n),
            None => {
                self.bytes_allocated += 8 * padded as u64;
                AlignedVec::new(n)
            }
        }
    }

    /// Park an aligned buffer's backing allocation for reuse (by either
    /// [`Workspace::take`] or [`Workspace::take_aligned`]).
    pub fn put_aligned(&mut self, buf: AlignedVec) {
        self.put(buf.buf);
    }

    /// A zeroed `usize` bookkeeping buffer of length `n` (column owner
    /// maps, per-column freeze states): pooled if any parked index buffer
    /// has the capacity, freshly allocated (and counted as `8 × n` miss
    /// bytes) otherwise. Same contract as [`Workspace::take`], on a
    /// separate pool.
    pub fn take_indices(&mut self, n: usize) -> Vec<usize> {
        match best_fit(&self.index_pool, n) {
            Some(i) => {
                let mut b = self.index_pool.swap_remove(i);
                b.clear();
                b.resize(n, 0);
                b
            }
            None => {
                self.bytes_allocated += (core::mem::size_of::<usize>() * n) as u64;
                vec![0; n]
            }
        }
    }

    /// Park an index buffer for reuse by [`Workspace::take_indices`].
    pub fn put_indices(&mut self, buf: Vec<usize>) {
        if buf.capacity() > 0 {
            self.index_pool.push(buf);
        }
    }

    /// Total bytes ever allocated through pool misses.
    pub fn bytes_allocated(&self) -> u64 {
        self.bytes_allocated
    }

    /// Start a measurement window: [`Workspace::bytes_since_mark`] reports
    /// allocations from this point on.
    pub fn mark(&mut self) {
        self.mark = self.bytes_allocated;
    }

    /// Bytes allocated through pool misses since the last
    /// [`Workspace::mark`] (or construction).
    pub fn bytes_since_mark(&self) -> u64 {
        self.bytes_allocated - self.mark
    }
}

/// Index of the parked buffer with the smallest capacity still holding
/// `n` elements, if any.
fn best_fit<T>(pool: &[Vec<T>], n: usize) -> Option<usize> {
    pool.iter()
        .enumerate()
        .filter(|(_, b)| b.capacity() >= n)
        .min_by_key(|(_, b)| b.capacity())
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_counts_misses_and_reuse_is_free() {
        let mut ws = Workspace::new();
        let a = ws.take(100);
        assert_eq!(ws.bytes_allocated(), 800);
        ws.put(a);
        let b = ws.take(100);
        assert_eq!(ws.bytes_allocated(), 800, "pool hit must not allocate");
        assert_eq!(b.len(), 100);
        assert!(b.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn take_zeroes_recycled_buffers() {
        let mut ws = Workspace::new();
        let mut a = ws.take(8);
        a.fill(3.5);
        ws.put(a);
        let b = ws.take(8);
        assert!(b.iter().all(|&x| x == 0.0));
        // A smaller request reuses the larger capacity.
        ws.put(b);
        let c = ws.take(4);
        assert_eq!(c.len(), 4);
        assert_eq!(ws.bytes_allocated(), 64);
    }

    #[test]
    fn aligned_take_is_lane_aligned_zeroed_and_reusable() {
        let mut ws = Workspace::new();
        let mut a = ws.take_aligned(100);
        assert_eq!(a.len(), 100);
        assert!(a.is_lane_aligned());
        assert!(a.iter().all(|&x| x == 0.0));
        let miss = ws.bytes_allocated();
        assert_eq!(miss, 8 * (100 + 7) as u64);
        a.as_mut_slice().fill(2.5);
        ws.put_aligned(a);
        // Reuse hits the pool and re-zeroes, even for plain takes.
        let b = ws.take_aligned(64);
        assert!(b.is_lane_aligned());
        assert!(b.iter().all(|&x| x == 0.0));
        assert_eq!(ws.bytes_allocated(), miss, "pool hit must not allocate");
        ws.put_aligned(b);
        let c = ws.take(100);
        assert_eq!(ws.bytes_allocated(), miss);
        assert_eq!(c.len(), 100);
    }

    #[test]
    fn aligned_into_vec_keeps_window_contents() {
        let mut a = AlignedVec::new(5);
        a.as_mut_slice().copy_from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(a.into_vec(), vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn index_pool_counts_misses_and_reuse_is_free_and_zeroed() {
        let mut ws = Workspace::new();
        let mut a = ws.take_indices(10);
        assert_eq!(ws.bytes_allocated(), 80);
        a.fill(7);
        ws.put_indices(a);
        let b = ws.take_indices(10);
        assert_eq!(ws.bytes_allocated(), 80, "pool hit must not allocate");
        assert!(b.iter().all(|&x| x == 0));
        // The index pool never serves (or steals from) the f64 pool.
        ws.put_indices(b);
        let f = ws.take(10);
        assert_eq!(ws.bytes_allocated(), 160);
        ws.put(f);
        let c = ws.take_indices(4);
        assert_eq!(c.len(), 4);
        assert_eq!(ws.bytes_allocated(), 160);
    }

    #[test]
    fn take_copy_matches_source() {
        let mut ws = Workspace::new();
        let src = [1.0, -2.0, 3.0];
        let b = ws.take_copy(&src);
        assert_eq!(b, src);
    }

    #[test]
    fn warm_then_mark_pins_steady_state_at_zero() {
        let mut ws = Workspace::new();
        ws.warm(64, 3);
        ws.mark();
        for _ in 0..10 {
            let x = ws.take(64);
            let y = ws.take(64);
            let r = ws.take(64);
            ws.put(x);
            ws.put(y);
            ws.put(r);
        }
        assert_eq!(ws.bytes_since_mark(), 0);
        // A fourth concurrent buffer is a genuine miss and is counted.
        let a = ws.take(64);
        let b = ws.take(64);
        let c = ws.take(64);
        let d = ws.take(64);
        assert_eq!(ws.bytes_since_mark(), 512);
        drop((a, b, c, d));
    }
}
