//! Reusable buffer pool for the solver hot path.
//!
//! The power-iteration working set is three `N`-vectors (iterate, image,
//! residual) plus an occasional verification buffer. Allocating them fresh
//! for every attempt — and, before the fused kernels became plan-inline,
//! for every *apply* — put the allocator on the per-solve critical path.
//! [`Workspace`] recycles those buffers instead: [`Workspace::take`]
//! prefers a pooled buffer and only falls back to the allocator on a pool
//! miss, counting every missed byte so a solve can report (and tests can
//! pin) its steady-state allocation cost.
//!
//! The accounting is deliberately simple and observable without a global
//! allocator hook: `bytes_allocated` is exactly `8 × Σ len` over pool
//! misses. A solve that warms the pool first and then reports zero
//! [`Workspace::bytes_since_mark`] provably never grew its working set.

/// A pool of reusable `f64` buffers with pool-miss byte accounting.
///
/// Buffers move out via [`Workspace::take`] / [`Workspace::take_copy`] and
/// back in via [`Workspace::put`]; they are ordinary `Vec<f64>`s, so a
/// result vector can simply escape the pool when it outlives the solve.
#[derive(Debug, Default)]
pub struct Workspace {
    pool: Vec<Vec<f64>>,
    bytes_allocated: u64,
    mark: u64,
}

impl Workspace {
    /// An empty, cold pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// A zeroed buffer of length `n`: pooled if any parked buffer has the
    /// capacity, freshly allocated (and counted) otherwise.
    pub fn take(&mut self, n: usize) -> Vec<f64> {
        match self.pool.iter().position(|b| b.capacity() >= n) {
            Some(i) => {
                let mut b = self.pool.swap_remove(i);
                b.clear();
                b.resize(n, 0.0);
                b
            }
            None => {
                self.bytes_allocated += 8 * n as u64;
                vec![0.0; n]
            }
        }
    }

    /// A buffer holding a copy of `src` (same pooling rules as
    /// [`Workspace::take`]).
    pub fn take_copy(&mut self, src: &[f64]) -> Vec<f64> {
        let mut b = self.take(src.len());
        b.copy_from_slice(src);
        b
    }

    /// Park a buffer for reuse.
    pub fn put(&mut self, buf: Vec<f64>) {
        if buf.capacity() > 0 {
            self.pool.push(buf);
        }
    }

    /// Pre-allocate `count` buffers of length `n` so subsequent
    /// [`Workspace::take`] calls of that size hit the pool.
    pub fn warm(&mut self, n: usize, count: usize) {
        let held: Vec<_> = (0..count).map(|_| self.take(n)).collect();
        for b in held {
            self.put(b);
        }
    }

    /// Total bytes ever allocated through pool misses.
    pub fn bytes_allocated(&self) -> u64 {
        self.bytes_allocated
    }

    /// Start a measurement window: [`Workspace::bytes_since_mark`] reports
    /// allocations from this point on.
    pub fn mark(&mut self) {
        self.mark = self.bytes_allocated;
    }

    /// Bytes allocated through pool misses since the last
    /// [`Workspace::mark`] (or construction).
    pub fn bytes_since_mark(&self) -> u64 {
        self.bytes_allocated - self.mark
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_counts_misses_and_reuse_is_free() {
        let mut ws = Workspace::new();
        let a = ws.take(100);
        assert_eq!(ws.bytes_allocated(), 800);
        ws.put(a);
        let b = ws.take(100);
        assert_eq!(ws.bytes_allocated(), 800, "pool hit must not allocate");
        assert_eq!(b.len(), 100);
        assert!(b.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn take_zeroes_recycled_buffers() {
        let mut ws = Workspace::new();
        let mut a = ws.take(8);
        a.fill(3.5);
        ws.put(a);
        let b = ws.take(8);
        assert!(b.iter().all(|&x| x == 0.0));
        // A smaller request reuses the larger capacity.
        ws.put(b);
        let c = ws.take(4);
        assert_eq!(c.len(), 4);
        assert_eq!(ws.bytes_allocated(), 64);
    }

    #[test]
    fn take_copy_matches_source() {
        let mut ws = Workspace::new();
        let src = [1.0, -2.0, 3.0];
        let b = ws.take_copy(&src);
        assert_eq!(b, src);
    }

    #[test]
    fn warm_then_mark_pins_steady_state_at_zero() {
        let mut ws = Workspace::new();
        ws.warm(64, 3);
        ws.mark();
        for _ in 0..10 {
            let x = ws.take(64);
            let y = ws.take(64);
            let r = ws.take(64);
            ws.put(x);
            ws.put(y);
            ws.put(r);
        }
        assert_eq!(ws.bytes_since_mark(), 0);
        // A fourth concurrent buffer is a genuine miss and is counted.
        let a = ws.take(64);
        let b = ws.take(64);
        let c = ws.take(64);
        let d = ws.take(64);
        assert_eq!(ws.bytes_since_mark(), 512);
        drop((a, b, c, d));
    }
}
