//! Fast solvers for Eigen's quasispecies model — a from-scratch
//! reproduction of *"A Fast Solver for Modeling the Evolution of Virus
//! Populations"* (Niederbrucker & Gansterer, SC'11).
//!
//! The quasispecies model describes the long-term evolution of a virus
//! population of RNA chain length `ν` as the dominant eigenvector of
//! `W = Q·F`, where `Q` is the mutation matrix and `F` the fitness
//! landscape. `N = 2^ν` grows exponentially, so the solvers here are
//! matrix-free and built on the `Θ(N log₂ N)` fast mutation matrix product
//! `Fmmp` of the paper:
//!
//! ```
//! use quasispecies::{solve, SolverConfig};
//! use qs_landscape::SinglePeak;
//!
//! // ν = 10, single-peak landscape, error rate p = 0.01.
//! let landscape = SinglePeak::new(10, 2.0, 1.0);
//! let result = solve(0.01, &landscape, &SolverConfig::default()).unwrap();
//! assert!(result.lambda > 1.0);
//! // The master sequence dominates the quasispecies at small p:
//! assert_eq!(result.dominant_sequence(), 0);
//! let gamma = result.error_class_concentrations();
//! assert!(gamma[0] > 0.5);
//! ```
//!
//! Module map (paper section in brackets):
//!
//! * [`power`] — shifted power iteration on implicit operators (§3),
//! * [`lanczos`](mod@lanczos) — Lanczos comparator with full reorthogonalisation (§3
//!   mentions it as the storage-hungry alternative),
//! * [`solver`] — high-level driver: pick engine (`Fmmp`, parallel `Fmmp`,
//!   `Xmvp(d_max)`, `Smvp`, Kronecker chains), formulation, shift (§2–4),
//! * [`result`] — the [`Quasispecies`] solution object: concentrations,
//!   error classes, entropy, order parameters (§1.1),
//! * [`reduced`] — the *exact* `(ν+1)×(ν+1)` reduction for error-class
//!   landscapes (§5.1),
//! * [`kron_solver`] — the factorised solver for Kronecker landscapes,
//!   including implicit eigenvector queries and per-class min/max via
//!   dynamic programming (§5.2),
//! * [`threshold`] — error-threshold scans and `p_max` detection
//!   (Figure 1),
//! * [`request`] — the content-addressable [`SolveRequest`] /
//!   [`SolveResult`] boundary the CLI, benches and the solve server
//!   share, with per-point cache keys and batched multi-rate solves.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod checkpoint;
pub mod guard;
pub mod kron_solver;
pub mod krylov;
pub mod lanczos;
pub mod mixed;
pub mod power;
pub mod reduced;
pub mod request;
pub mod resolution;
pub mod result;
pub mod rqi;
pub mod solver;
pub mod threshold;
pub mod workspace;

pub use analysis::{spectral_gap, summarize, PopulationSummary, SpectralGap, SpectralGapOptions};
pub use checkpoint::{
    block_state_code, load_latest, BlockColumnState, BlockState, CheckpointConfig, CheckpointError,
    CheckpointSession, Checkpointer, Fnv64, Snapshot, FORMAT_VERSION, MAX_METHOD_LEN,
};
pub use guard::{Breakdown, StallDetector};
pub use kron_solver::{solve_kronecker, KroneckerQuasispecies};
pub use krylov::{minres, minres_durable, minres_probed, MinresOptions, MinresOutcome};
pub use lanczos::{lanczos, lanczos_durable, lanczos_probed, LanczosOptions, LanczosOutcome};
pub use mixed::{solve_mixed_precision, MixedOptions, MixedStats};
pub use power::{
    block_power_iteration, block_power_iteration_durable, block_power_iteration_in,
    power_iteration, power_iteration_probed, power_iteration_probed_in, BlockPowerOutcome,
    PowerOptions, PowerOutcome,
};
pub use reduced::{solve_error_class, ReducedQuasispecies};
pub use request::{
    BlockSolveStats, LandscapeSpec, PointResult, Scheduling, SolveRequest, SolveResult, StartSeed,
};
pub use resolution::{marginal, site_marginals, Pyramid};
pub use result::{downsample_uniform, Quasispecies, SolveStats, WarmStartInfo};
pub use rqi::{
    rayleigh_quotient_iteration, rayleigh_quotient_iteration_durable,
    rayleigh_quotient_iteration_probed, RqiOptions, RqiOutcome,
};
pub use solver::{
    resume_durable, resume_durable_probed, solve, solve_durable, solve_durable_probed,
    solve_probed, solve_with_model, solve_with_model_probed, solve_with_q_operator,
    solve_with_q_operator_durable_probed, solve_with_q_operator_probed, Engine, Method,
    ShiftStrategy, SolveError, SolverConfig,
};
pub use threshold::{
    detect_pmax, order_parameter, scan_error_classes, scan_full, scan_full_sweep, ThresholdScan,
};
pub use workspace::{AlignedVec, Workspace, LANE_ALIGN};

// Re-export the pieces user code needs to assemble custom problems.
pub use qs_matvec::Formulation;
/// Solver telemetry: typed events, probes and trace summaries
/// (re-exported [`qs_telemetry`]).
pub use qs_telemetry as telemetry;
pub use qs_telemetry::{NullProbe, Probe, RecordingProbe, SolverEvent};
