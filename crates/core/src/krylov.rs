//! MINRES: minimal-residual solves with symmetric (possibly indefinite)
//! implicit operators.
//!
//! This is the building block the paper names as its next step
//! (Section 3, "Towards a Shift-and-Invert Method"): an efficient solver
//! for `(F^½·Q·F^½ − µI)·y = x` with *arbitrary* diagonal `F`. The shifted
//! operator is symmetric but indefinite for shifts inside the spectrum, so
//! CG is out and MINRES is the natural choice; each iteration costs one
//! `Fmmp` application, keeping the whole inner solve matrix-free at
//! `Θ(N log₂ N)` per step.
//!
//! Combined with [`crate::rqi`] this turns the paper's sketch into a
//! working inverse-iteration/Rayleigh-quotient-iteration solver for the
//! full `W` eigenproblem.

use std::time::Instant;

use qs_linalg::{dot, norm_l2};
use qs_matvec::LinearOperator;
use qs_telemetry::{NullProbe, Probe, SolverEvent};

use crate::checkpoint::CheckpointSession;
use crate::guard::Breakdown;
use crate::solver::SolveError;

/// Options for [`minres`].
#[derive(Debug, Clone, Copy)]
pub struct MinresOptions {
    /// Relative residual tolerance `‖b − A·x‖ ≤ tol·‖b‖`.
    pub tol: f64,
    /// Iteration budget.
    pub max_iter: usize,
    /// Wall-clock deadline. When it expires mid-solve the current
    /// minimal-residual iterate is returned with `timed_out` set instead
    /// of running the budget out. `None` disables the check (and the
    /// clock is never read, keeping the loop bit-identical).
    pub deadline: Option<Instant>,
}

impl Default for MinresOptions {
    fn default() -> Self {
        MinresOptions {
            tol: 1e-10,
            max_iter: 10_000,
            deadline: None,
        }
    }
}

/// Outcome of a MINRES solve.
#[derive(Debug, Clone)]
pub struct MinresOutcome {
    /// The approximate solution.
    pub x: Vec<f64>,
    /// Iterations (= operator applications) performed.
    pub iterations: usize,
    /// Final *estimated* residual norm (recurrence-based).
    pub residual: f64,
    /// Whether the tolerance was met within the budget.
    pub converged: bool,
    /// Set when the recurrence produced a non-finite quantity (a
    /// poisoned matvec or overflow along the near-null direction) and
    /// the solve stopped early. `None` for convergence or honest budget
    /// exhaustion.
    pub breakdown: Option<Breakdown>,
    /// `true` when the wall-clock deadline expired before convergence;
    /// `x` is the best minimal-residual iterate so far.
    pub timed_out: bool,
}

/// Solve `A·x = b` for a symmetric operator `A` by MINRES
/// (Paige–Saunders), starting from `x = 0`.
///
/// On a (nearly) singular `A` — the regime inverse iteration deliberately
/// creates — MINRES returns the minimal-residual iterate, which grows
/// along the near-null direction; callers doing inverse iteration should
/// bound `max_iter` and renormalise.
///
/// # Errors
///
/// Returns [`SolveError::InvalidConfig`] if `opts.tol` is not a finite
/// positive number.
///
/// # Panics
///
/// Panics on length mismatch (a programmer error, unlike a bad runtime
/// tolerance).
pub fn minres<A: LinearOperator + ?Sized>(
    a: &A,
    b: &[f64],
    opts: &MinresOptions,
) -> Result<MinresOutcome, SolveError> {
    minres_probed(a, b, opts, &mut NullProbe)
}

/// [`minres`] with a telemetry [`Probe`].
///
/// MINRES is an *inner* solve, so it emits only the operator's
/// [`SolverEvent::MatvecTimed`] breakdown and one [`SolverEvent::Residual`]
/// per iteration (the recurrence-based estimate, with `lambda: 0.0` since
/// a linear solve has no eigenvalue) — no `IterationStart` or terminal
/// events, which belong to the outer eigensolver. With a disabled probe
/// the arithmetic is bit-for-bit that of [`minres`].
pub fn minres_probed<A: LinearOperator + ?Sized, P: Probe>(
    a: &A,
    b: &[f64],
    opts: &MinresOptions,
    probe: &mut P,
) -> Result<MinresOutcome, SolveError> {
    minres_core(a, b, opts, probe, None)
}

/// [`minres_probed`] with a durable [`CheckpointSession`]: the residual
/// trajectory feeds the session history and the current minimal-residual
/// iterate is snapshotted on the session's cadence, so an interrupted
/// linear solve can be warm-restarted by the caller.
pub fn minres_durable<A: LinearOperator + ?Sized, P: Probe>(
    a: &A,
    b: &[f64],
    opts: &MinresOptions,
    probe: &mut P,
    session: &mut CheckpointSession,
) -> Result<MinresOutcome, SolveError> {
    minres_core(a, b, opts, probe, Some(session))
}

fn minres_core<A: LinearOperator + ?Sized, P: Probe>(
    a: &A,
    b: &[f64],
    opts: &MinresOptions,
    probe: &mut P,
    mut durable: Option<&mut CheckpointSession>,
) -> Result<MinresOutcome, SolveError> {
    assert_eq!(b.len(), a.len(), "minres: rhs length mismatch");
    if !(opts.tol.is_finite() && opts.tol > 0.0) {
        return Err(SolveError::InvalidConfig {
            parameter: "tol",
            detail: format!(
                "MINRES tolerance must be finite and positive, got {}",
                opts.tol
            ),
        });
    }
    let n = b.len();

    let beta1 = norm_l2(b);
    if beta1 == 0.0 {
        return Ok(MinresOutcome {
            x: vec![0.0; n],
            iterations: 0,
            residual: 0.0,
            converged: true,
            breakdown: None,
            timed_out: false,
        });
    }

    // Lanczos vectors v_{j−1}, v_j and the next one under construction.
    let mut v_prev = vec![0.0; n];
    let mut v: Vec<f64> = b.iter().map(|&bi| bi / beta1).collect();
    let mut av = vec![0.0; n];
    // Search directions w_{j−2}, w_{j−1}.
    let mut w_old2 = vec![0.0; n];
    let mut w_old1 = vec![0.0; n];

    let mut x = vec![0.0; n];
    let mut beta = beta1;
    let mut eta = beta1;
    // Givens rotation state: (γ₀, γ₁) previous-two cosines, (σ₀, σ₁) sines.
    let (mut gamma0, mut gamma1) = (1.0f64, 1.0f64);
    let (mut sigma0, mut sigma1) = (0.0f64, 0.0f64);

    let mut residual = beta1;
    let mut iterations = 0;
    let mut converged = false;
    let mut breakdown = None;
    let mut timed_out = false;

    while iterations < opts.max_iter {
        iterations += 1;
        // Lanczos step: v_new = A·v − α·v − β·v_prev.
        if probe.enabled() {
            a.apply_into_probed(&v, &mut av, probe);
        } else {
            a.apply_into(&v, &mut av);
        }
        let alpha = dot(&v, &av);
        for ((ai, &vi), &pi) in av.iter_mut().zip(&v).zip(&v_prev) {
            *ai -= alpha * vi + beta * pi;
        }
        let beta_new = norm_l2(&av);

        // Guardrail: the Paige–Saunders recurrence keeps |η| non-increasing
        // on a healthy symmetric system, so the only way the solve can
        // diverge is a non-finite quantity entering the recurrence. Stop
        // before it poisons x.
        if !alpha.is_finite() || !beta_new.is_finite() {
            breakdown = Some(Breakdown::MinresDivergence);
            probe.record(&SolverEvent::GuardrailTripped {
                kind: Breakdown::MinresDivergence.label(),
                iter: iterations,
            });
            break;
        }

        // Apply the two previous rotations and compute the new one.
        let delta = gamma1 * alpha - gamma0 * sigma1 * beta;
        let rho1 = (delta * delta + beta_new * beta_new).sqrt();
        let rho2 = sigma1 * alpha + gamma0 * gamma1 * beta;
        let rho3 = sigma0 * beta;
        if rho1 == 0.0 {
            // Exact breakdown: b lies in an invariant subspace already
            // captured; the current x is the solution restricted to it.
            converged = residual <= opts.tol * beta1;
            break;
        }
        gamma0 = gamma1;
        gamma1 = delta / rho1;
        sigma0 = sigma1;
        sigma1 = beta_new / rho1;

        // New search direction and solution update.
        for i in 0..n {
            let wi = (v[i] - rho3 * w_old2[i] - rho2 * w_old1[i]) / rho1;
            w_old2[i] = w_old1[i];
            w_old1[i] = wi;
            x[i] += gamma1 * eta * wi;
        }
        eta *= -sigma1;
        residual = eta.abs();
        probe.record(&SolverEvent::Residual {
            iter: iterations,
            value: residual,
            lambda: 0.0,
        });
        if let Some(session) = durable.as_deref_mut() {
            session.push_residual(residual);
            if session.due(iterations as u64) {
                match session.write_snapshot(
                    iterations as u64,
                    iterations as u64,
                    (f64::INFINITY, 0),
                    &x,
                ) {
                    Ok(bytes) => probe.record(&SolverEvent::CheckpointWritten {
                        iter: iterations,
                        bytes,
                    }),
                    Err(_) => probe.record(&SolverEvent::CheckpointRejected {
                        reason: "write_failed",
                    }),
                }
            }
        }

        if residual <= opts.tol * beta1 {
            converged = true;
            break;
        }
        if beta_new == 0.0 {
            // Invariant subspace exhausted; solution is exact there.
            converged = true;
            residual = 0.0;
            break;
        }
        if opts
            .deadline
            .is_some_and(|deadline| Instant::now() >= deadline)
        {
            timed_out = true;
            break;
        }
        // Advance the Lanczos pair.
        std::mem::swap(&mut v_prev, &mut v);
        for (vi, &ai) in v.iter_mut().zip(&av) {
            *vi = ai / beta_new;
        }
        beta = beta_new;
    }

    Ok(MinresOutcome {
        x,
        iterations,
        residual,
        converged,
        breakdown,
        timed_out,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qs_landscape::Random;
    use qs_linalg::DenseMatrix;
    use qs_matvec::{Fmmp, Formulation, ShiftedOp, WOperator};

    /// Dense symmetric operator wrapper for ground-truth checks.
    struct DenseOp(DenseMatrix);
    impl LinearOperator for DenseOp {
        fn len(&self) -> usize {
            self.0.rows()
        }
        fn apply_into(&self, x: &[f64], y: &mut [f64]) {
            self.0.matvec_into(x, y);
        }
    }

    fn true_residual<A: LinearOperator + ?Sized>(a: &A, x: &[f64], b: &[f64]) -> f64 {
        let ax = a.apply(x);
        let r: Vec<f64> = ax.iter().zip(b).map(|(&u, &v)| v - u).collect();
        norm_l2(&r)
    }

    #[test]
    fn solves_spd_system() {
        let a = DenseOp(DenseMatrix::from_vec(
            3,
            3,
            vec![4.0, 1.0, 0.0, 1.0, 3.0, 1.0, 0.0, 1.0, 2.0],
        ));
        let b = [1.0, 2.0, 3.0];
        let out = minres(&a, &b, &MinresOptions::default()).unwrap();
        assert!(out.converged);
        assert!(true_residual(&a, &out.x, &b) < 1e-9);
    }

    #[test]
    fn solves_indefinite_system() {
        // Eigenvalues of diag(2, -1, 0.5): indefinite — CG would fail.
        let a = DenseOp(DenseMatrix::diagonal(&[2.0, -1.0, 0.5]));
        let b = [2.0, 2.0, 2.0];
        let out = minres(&a, &b, &MinresOptions::default()).unwrap();
        assert!(out.converged);
        assert!((out.x[0] - 1.0).abs() < 1e-9);
        assert!((out.x[1] + 2.0).abs() < 1e-9);
        assert!((out.x[2] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn zero_rhs_is_trivial() {
        let a = DenseOp(DenseMatrix::identity(4));
        let out = minres(&a, &[0.0; 4], &MinresOptions::default()).unwrap();
        assert!(out.converged);
        assert_eq!(out.iterations, 0);
        assert_eq!(out.x, vec![0.0; 4]);
    }

    #[test]
    fn residual_estimate_tracks_true_residual() {
        let a = DenseOp(DenseMatrix::from_vec(
            4,
            4,
            vec![
                5.0, 1.0, 0.5, 0.0, 1.0, -3.0, 1.0, 0.2, 0.5, 1.0, 2.0, 1.0, 0.0, 0.2, 1.0, -1.0,
            ],
        ));
        let b = [1.0, -2.0, 0.5, 3.0];
        let out = minres(
            &a,
            &b,
            &MinresOptions {
                tol: 1e-12,
                max_iter: 100,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(out.converged);
        let tr = true_residual(&a, &out.x, &b);
        assert!(tr < 1e-8, "true residual {tr} vs estimate {}", out.residual);
    }

    #[test]
    fn shifted_quasispecies_operator_solve() {
        // The paper's target system: (F^½QF^½ − µI)y = x with arbitrary
        // diagonal F, µ inside the spectrum (indefinite).
        let nu = 8u32;
        let p = 0.02;
        let landscape = Random::new(nu, 5.0, 1.0, 17);
        let w = WOperator::from_landscape(Fmmp::new(nu, p), &landscape, Formulation::Symmetric);
        let mu = 2.0; // strictly inside (λ_min, λ₀) for this landscape
        let shifted = ShiftedOp::new(&w, mu);
        let b: Vec<f64> = (0..1usize << nu)
            .map(|i| ((i * 7) % 13) as f64 - 6.0)
            .collect();
        let out = minres(
            &shifted,
            &b,
            &MinresOptions {
                tol: 1e-9,
                max_iter: 5_000,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(out.converged, "residual {}", out.residual);
        assert!(true_residual(&shifted, &out.x, &b) < 1e-6 * norm_l2(&b));
    }

    #[test]
    fn budget_exhaustion_reported() {
        let a = DenseOp(DenseMatrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1e-12]));
        let out = minres(
            &a,
            &[1.0, 1.0],
            &MinresOptions {
                tol: 1e-15,
                max_iter: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!out.converged);
        assert_eq!(out.iterations, 1);
    }

    #[test]
    fn expired_deadline_returns_flagged_best_so_far() {
        let a = DenseOp(DenseMatrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1e-12]));
        let out = minres(
            &a,
            &[1.0, 1.0],
            &MinresOptions {
                tol: 1e-15,
                max_iter: 10_000,
                deadline: Some(std::time::Instant::now()),
            },
        )
        .unwrap();
        assert!(out.timed_out);
        assert!(!out.converged);
        assert_eq!(out.iterations, 1);
        assert!(out.x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn non_positive_tolerance_is_a_typed_error_not_a_panic() {
        let a = DenseOp(DenseMatrix::identity(3));
        for bad in [0.0, -1e-10, f64::NAN, f64::INFINITY] {
            let err = minres(
                &a,
                &[1.0, 0.0, 0.0],
                &MinresOptions {
                    tol: bad,
                    max_iter: 10,
                    ..Default::default()
                },
            )
            .unwrap_err();
            match err {
                SolveError::InvalidConfig { parameter, .. } => assert_eq!(parameter, "tol"),
                other => panic!("expected InvalidConfig, got {other:?}"),
            }
        }
    }

    #[test]
    fn nan_operator_classifies_minres_divergence() {
        struct NanOp;
        impl LinearOperator for NanOp {
            fn len(&self) -> usize {
                3
            }
            fn apply_into(&self, _x: &[f64], y: &mut [f64]) {
                y.fill(f64::NAN);
            }
        }
        let out = minres(&NanOp, &[1.0, 2.0, 3.0], &MinresOptions::default()).unwrap();
        assert!(!out.converged);
        assert_eq!(out.breakdown, Some(Breakdown::MinresDivergence));
        assert_eq!(out.iterations, 1);
        // x was never updated with poisoned data.
        assert!(out.x.iter().all(|v| v.is_finite()));
    }
}
