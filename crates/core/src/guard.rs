//! Breakdown classification for the solver guardrails.
//!
//! Every iterative loop in this crate (power, Lanczos, RQI, MINRES) can
//! fail in ways that are *not* honest budget exhaustion: a corrupted
//! matvec poisons the iterate with NaN/Inf, a near-singular inner system
//! stalls the residual, the Krylov recurrence loses orthogonality, or a
//! shift lands on an eigenvalue and collapses the iterate. The guardrails
//! detect these conditions, classify them with a [`Breakdown`], and hand
//! the classification to the recovery ladder in
//! [`solve`](crate::solver::solve) instead of panicking or silently
//! spinning to `max_iter`.

use std::fmt;

/// Why an iterative loop stopped before its budget with an unusable or
/// suspect state.
///
/// The `label()` strings double as the `kind` field of
/// [`qs_telemetry::SolverEvent::GuardrailTripped`] events and as the
/// `kind` of [`SolveError::NumericalBreakdown`](crate::SolveError), so
/// trace streams, typed errors and `SolveStats` all speak the same
/// vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Breakdown {
    /// The iterate, eigenvalue estimate or residual became NaN/±∞
    /// (e.g. an injected NaN matvec or overflow).
    NonFiniteIterate,
    /// The residual stopped improving for a full stall window — the loop
    /// is spinning without making progress (e.g. a persistently corrupted
    /// operator element).
    ResidualStagnation,
    /// The Lanczos recurrence produced a non-finite `α`/`β` coefficient;
    /// the tridiagonal projection is no longer meaningful. (The *happy*
    /// breakdown `β ≈ 0` is convergence, not this.)
    LanczosBreakdown,
    /// MINRES lost the residual-reduction guarantee: its recurrence
    /// produced a non-finite quantity or the estimated residual grew past
    /// its starting value, which the Paige–Saunders recurrence forbids on
    /// a healthy symmetric system.
    MinresDivergence,
    /// The iterate collapsed to (numerically) zero, e.g. a spectral shift
    /// hit an eigenvalue exactly.
    IterateCollapse,
}

impl Breakdown {
    /// Stable `snake_case` label used in telemetry events, typed errors
    /// and `SolveStats::recovered_from`.
    pub fn label(&self) -> &'static str {
        match self {
            Breakdown::NonFiniteIterate => "non_finite_iterate",
            Breakdown::ResidualStagnation => "residual_stagnation",
            Breakdown::LanczosBreakdown => "lanczos_breakdown",
            Breakdown::MinresDivergence => "minres_divergence",
            Breakdown::IterateCollapse => "iterate_collapse",
        }
    }
}

impl fmt::Display for Breakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Residual-stagnation detector: trips when the best residual seen has
/// not improved for `window` consecutive measurements.
///
/// Comparisons use [`f64::total_cmp`] semantics via explicit ordering on
/// finite values; a NaN residual never counts as an improvement (the
/// non-finite guardrail catches it first in every loop).
#[derive(Debug, Clone, Copy)]
pub struct StallDetector {
    window: usize,
    best: f64,
    stalled: usize,
}

impl StallDetector {
    /// A detector that trips after `window` non-improving measurements.
    pub fn new(window: usize) -> Self {
        StallDetector {
            window,
            best: f64::INFINITY,
            stalled: 0,
        }
    }

    /// Rebuild a detector from a persisted `(best, stalled)` pair (see
    /// [`state`](Self::state)). Used by checkpoint resume so a restarted
    /// loop observes the *same* stagnation history as the uninterrupted
    /// run — a requirement for bit-identical replay.
    pub fn restore(window: usize, best: f64, stalled: usize) -> Self {
        StallDetector {
            window,
            best,
            stalled,
        }
    }

    /// The persistable state `(best residual seen, consecutive
    /// non-improving measurements)`; round-trips through
    /// [`restore`](Self::restore).
    pub fn state(&self) -> (f64, usize) {
        (self.best, self.stalled)
    }

    /// Feed one residual measurement; returns `true` when the detector
    /// trips (and stays tripped until reset).
    pub fn observe(&mut self, residual: f64) -> bool {
        if residual.is_finite() && residual < self.best {
            self.best = residual;
            self.stalled = 0;
        } else {
            self.stalled += 1;
        }
        self.stalled >= self.window
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_snake_case_and_stable() {
        assert_eq!(Breakdown::NonFiniteIterate.label(), "non_finite_iterate");
        assert_eq!(Breakdown::ResidualStagnation.label(), "residual_stagnation");
        assert_eq!(Breakdown::LanczosBreakdown.label(), "lanczos_breakdown");
        assert_eq!(Breakdown::MinresDivergence.label(), "minres_divergence");
        assert_eq!(Breakdown::IterateCollapse.label(), "iterate_collapse");
        assert_eq!(Breakdown::LanczosBreakdown.to_string(), "lanczos_breakdown");
    }

    #[test]
    fn stall_detector_trips_after_window_without_improvement() {
        let mut d = StallDetector::new(3);
        assert!(!d.observe(1.0));
        assert!(!d.observe(0.5)); // improving
        assert!(!d.observe(0.5)); // stalled 1
        assert!(!d.observe(0.6)); // stalled 2
        assert!(d.observe(0.5)); // stalled 3 -> trip
    }

    #[test]
    fn stall_detector_resets_on_improvement() {
        let mut d = StallDetector::new(2);
        assert!(!d.observe(1.0));
        assert!(!d.observe(1.0)); // stalled 1
        assert!(!d.observe(0.9)); // improvement resets
        assert!(!d.observe(0.9)); // stalled 1
        assert!(d.observe(0.9)); // stalled 2 -> trip
    }

    #[test]
    fn restored_detector_continues_the_original_history() {
        let mut original = StallDetector::new(3);
        original.observe(1.0);
        original.observe(1.0); // stalled 1
        let (best, stalled) = original.state();
        let mut restored = StallDetector::restore(3, best, stalled);
        // Both trip on the same future sequence.
        assert_eq!(original.observe(1.0), restored.observe(1.0)); // stalled 2
        assert_eq!(original.observe(1.0), restored.observe(1.0)); // stalled 3
        assert!(restored.observe(1.0));
    }

    #[test]
    fn nan_never_counts_as_improvement() {
        let mut d = StallDetector::new(2);
        assert!(!d.observe(f64::NAN));
        assert!(d.observe(f64::NAN));
    }
}
