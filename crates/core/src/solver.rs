//! High-level quasispecies solver: choose an engine, a method, a
//! formulation and a shift; get concentrations back.
//!
//! This is the driver the paper's Figures 3–4 benchmark: `Pi(Fmmp)`,
//! `Pi(Xmvp(ν))`, `Pi(Xmvp(5))` on either a serial ("CPU") or parallel
//! ("GPU"-substitute) backend.

use std::time::Instant;

use crate::checkpoint::{
    load_latest, CheckpointConfig, CheckpointError, CheckpointSession, Checkpointer, Fnv64,
};
use crate::guard::Breakdown;
use crate::lanczos::{lanczos_durable, lanczos_probed, LanczosOptions};
use crate::power::{power_iteration_durable_in, power_iteration_probed_in, PowerOptions};
use crate::result::{downsample_uniform, Quasispecies, SolveStats};
use crate::workspace::Workspace;
use qs_landscape::Landscape;
use qs_matvec::{
    conservative_shift, convert_eigenvector, Fmmp, Formulation, KroneckerOp, LinearOperator,
    ParFmmp, Smvp, WOperator, Xmvp,
};
use qs_mutation::MutationModel;
use qs_telemetry::{NullProbe, Probe, SolverEvent};

/// Which matrix–vector engine drives the solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The paper's exact `Θ(N log₂ N)` fast mutation matrix product.
    #[default]
    Fmmp,
    /// `Fmmp` through the fused cache-blocked kernels: radix-4/8
    /// butterflies process several stages per memory pass over
    /// cache-sized tiles. Bit-identical results, fewer full-vector
    /// sweeps.
    FmmpFused,
    /// `Fmmp` on the thread-pool backend (the paper's GPU role).
    FmmpParallel,
    /// The thread-pool backend running the fused multi-stage kernels.
    FmmpParallelFused,
    /// The XOR-based baseline, sparsified to Hamming radius `d_max`
    /// (`d_max = ν` is exact and `Θ(N²)`).
    Xmvp {
        /// Sparsification radius.
        d_max: u32,
    },
    /// Explicit dense matrix (only for small ν; `Θ(N²)` time *and* space).
    Smvp,
    /// Generic Kronecker-chain product (uniform model expressed through
    /// its factors; mainly for cross-checking the general machinery).
    Kronecker,
}

impl Engine {
    /// Label used in stats and benchmark output, matching the paper's
    /// figure legends.
    pub fn label(&self, nu: u32) -> String {
        match self {
            Engine::Fmmp => "Fmmp".into(),
            Engine::FmmpFused => "Fmmp-fused".into(),
            Engine::FmmpParallel => "Fmmp-par".into(),
            Engine::FmmpParallelFused => "Fmmp-par-fused".into(),
            Engine::Xmvp { d_max } if *d_max == nu => format!("Xmvp(ν={nu})"),
            Engine::Xmvp { d_max } => format!("Xmvp({d_max})"),
            Engine::Smvp => "Smvp".into(),
            Engine::Kronecker => "Kron".into(),
        }
    }
}

/// Which eigensolver runs on top of the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Method {
    /// Power iteration (the paper's choice).
    #[default]
    Power,
    /// Lanczos with full reorthogonalisation (always runs on the symmetric
    /// formulation; `subspace` basis vectors are stored).
    Lanczos {
        /// Maximum Krylov subspace dimension.
        subspace: usize,
    },
    /// Rayleigh-quotient iteration with MINRES inner solves (always on the
    /// symmetric formulation) — the shift-and-invert method the paper
    /// sketches as future work. `warmup` power steps steer the Rayleigh
    /// quotient to the dominant pair first.
    Rqi {
        /// Plain power steps before the first RQI step.
        warmup: usize,
    },
}

/// How the spectral shift `µ` is chosen (paper Section 3).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ShiftStrategy {
    /// No shift.
    None,
    /// The paper's conservative `µ = (1−2p)^ν·f_min` (uniform mutation
    /// models only; silently 0 for general models where the bound does not
    /// apply).
    #[default]
    Conservative,
    /// A caller-supplied shift.
    Custom(f64),
}

/// Full solver configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverConfig {
    /// Matrix–vector engine.
    pub engine: Engine,
    /// Eigensolver.
    pub method: Method,
    /// Shift strategy.
    pub shift: ShiftStrategy,
    /// Eigenproblem formulation (paper Eqs. 3–5). [`Method::Lanczos`]
    /// overrides this with `Symmetric`.
    pub formulation: Formulation,
    /// Residual tolerance `τ`.
    pub tol: f64,
    /// Iteration budget.
    pub max_iter: usize,
    /// Run the recovery ladder when a numerical breakdown is detected
    /// (restart with a re-normalised iterate, fall back through the other
    /// methods, finally return the best-so-far iterate flagged
    /// [`SolveStats::degraded`]). With `recover = false` a breakdown is
    /// surfaced immediately as [`SolveError::NumericalBreakdown`].
    pub recover: bool,
    /// Wall-clock deadline. When it expires mid-solve the best-so-far
    /// iterate is returned flagged [`SolveStats::deadline_expired`] (and
    /// [`SolveStats::degraded`]) instead of erroring. `None` disables
    /// the check entirely — the clock is never read, keeping solves
    /// bit-identical to earlier releases.
    pub deadline: Option<Instant>,
    /// Cap on [`SolveStats::residual_history`] length (and on the
    /// history persisted in checkpoints): histories longer than this are
    /// uniformly downsampled. `0` means unlimited.
    pub history_cap: usize,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            engine: Engine::default(),
            method: Method::default(),
            shift: ShiftStrategy::default(),
            formulation: Formulation::Right,
            tol: 1e-13,
            max_iter: 200_000,
            recover: true,
            deadline: None,
            history_cap: 10_000,
        }
    }
}

/// Errors a solve can produce.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// The iteration budget was exhausted before the residual met `tol`.
    NotConverged {
        /// Iterations performed.
        iterations: usize,
        /// Residual at the budget.
        residual: f64,
    },
    /// Operator and landscape dimensions disagree.
    DimensionMismatch {
        /// Operator dimension.
        operator: usize,
        /// Landscape dimension.
        landscape: usize,
    },
    /// A configuration parameter or input was rejected before any
    /// iteration ran (non-positive tolerance, error rate outside
    /// `(0, 1/2]`, non-positive fitness values, …).
    InvalidConfig {
        /// Which parameter was rejected (e.g. `"tol"`, `"p"`,
        /// `"fitness"`).
        parameter: &'static str,
        /// Human-readable description of the rejection.
        detail: String,
    },
    /// The solve broke down numerically (see [`Breakdown`] for the
    /// vocabulary of `kind` labels) and recovery — if enabled — could not
    /// produce even a degraded result.
    NumericalBreakdown {
        /// Stable `snake_case` classification, one of the
        /// [`Breakdown::label`] strings.
        kind: &'static str,
        /// Iterations performed across all recovery attempts.
        iterations: usize,
        /// Last residual observed (may be NaN if the iterate was
        /// poisoned).
        residual: f64,
    },
    /// A durable-solve operation failed: the checkpoint directory could
    /// not be opened, a snapshot was corrupt or bound to a different
    /// problem, or a resume was requested with no snapshot on disk.
    Checkpoint(CheckpointError),
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::NotConverged {
                iterations,
                residual,
            } => write!(
                f,
                "solver did not converge within {iterations} iterations (residual {residual:.3e})"
            ),
            SolveError::DimensionMismatch {
                operator,
                landscape,
            } => write!(
                f,
                "operator dimension {operator} does not match landscape dimension {landscape}"
            ),
            SolveError::InvalidConfig { parameter, detail } => {
                write!(f, "invalid solver configuration ({parameter}): {detail}")
            }
            SolveError::NumericalBreakdown {
                kind,
                iterations,
                residual,
            } => write!(
                f,
                "numerical breakdown ({kind}) after {iterations} iterations \
                 (residual {residual:.3e}); recovery exhausted"
            ),
            SolveError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
        }
    }
}

impl From<CheckpointError> for SolveError {
    fn from(e: CheckpointError) -> Self {
        SolveError::Checkpoint(e)
    }
}

impl std::error::Error for SolveError {}

/// Solve the quasispecies eigenproblem for the **uniform** mutation model
/// with error rate `p` on the given landscape.
///
/// The starting vector is the paper's
/// `s = diag(F)/‖diag(F)‖₁` (transformed into the working formulation),
/// chosen because the extremal eigenvector of `W = Q·F` resembles the
/// landscape itself.
///
/// # Errors
///
/// [`SolveError::InvalidConfig`] on invalid inputs (`p ∉ (0, 1/2]`,
/// non-positive `tol`, non-positive fitness values);
/// [`SolveError::NotConverged`] if the iteration budget runs out;
/// [`SolveError::NumericalBreakdown`] if the iteration broke down and the
/// recovery ladder (see [`SolverConfig::recover`]) could not salvage a
/// result.
///
/// # Panics
///
/// Panics on structurally invalid engines (`d_max > ν`, `Smvp` beyond the
/// materialisation guard).
pub fn solve<L: Landscape + ?Sized>(
    p: f64,
    landscape: &L,
    config: &SolverConfig,
) -> Result<Quasispecies, SolveError> {
    solve_probed(p, landscape, config, &mut NullProbe)
}

/// [`solve`] with a telemetry [`Probe`] receiving the full event stream
/// (iteration markers, residual trajectory, per-stage matvec timings and a
/// terminal `Converged`/`Budget` event).
///
/// The returned [`SolveStats::residual_history`] is populated whenever the
/// probe is enabled; with [`NullProbe`] it stays `None` and the solve is
/// bit-for-bit identical to [`solve`].
///
/// # Errors
///
/// Same as [`solve`].
pub fn solve_probed<L: Landscape + ?Sized, P: Probe>(
    p: f64,
    landscape: &L,
    config: &SolverConfig,
    probe: &mut P,
) -> Result<Quasispecies, SolveError> {
    let (q_op, shift, engine_label) = build_uniform_operator(p, landscape, config)?;
    solve_operator(q_op, landscape, shift, engine_label, config, None, probe)
}

/// Assemble the uniform-model `Q` operator and the resolved shift for
/// `(p, landscape, config)` — the shared front half of [`solve_probed`]
/// and the durable entry points.
#[allow(clippy::type_complexity)]
fn build_uniform_operator<L: Landscape + ?Sized>(
    p: f64,
    landscape: &L,
    config: &SolverConfig,
) -> Result<(Box<dyn LinearOperator>, f64, String), SolveError> {
    if !(p.is_finite() && p > 0.0 && p <= 0.5) {
        return Err(SolveError::InvalidConfig {
            parameter: "p",
            detail: format!("error rate must lie in (0, 1/2], got {p}"),
        });
    }
    let nu = landscape.nu();
    let engine_label = config.engine.label(nu);
    let q_op: Box<dyn LinearOperator> = match config.engine {
        Engine::Fmmp => Box::new(Fmmp::new(nu, p)),
        Engine::FmmpFused => Box::new(Fmmp::fused(nu, p)),
        Engine::FmmpParallel => Box::new(ParFmmp::new(nu, p)),
        Engine::FmmpParallelFused => Box::new(ParFmmp::fused(nu, p)),
        Engine::Xmvp { d_max } => Box::new(Xmvp::new(nu, p, d_max)),
        Engine::Smvp => Box::new(Smvp::from_model(&qs_mutation::Uniform::new(nu, p))),
        Engine::Kronecker => Box::new(KroneckerOp::from_model(&qs_mutation::Uniform::new(nu, p))),
    };
    let shift = match config.shift {
        ShiftStrategy::None => 0.0,
        ShiftStrategy::Conservative => {
            // `conservative_shift` asserts f_min > 0; turn a degenerate
            // landscape into the same typed error `solve_operator` raises.
            let f_min = landscape.f_min();
            if !(f_min.is_finite() && f_min > 0.0) {
                return Err(SolveError::InvalidConfig {
                    parameter: "fitness",
                    detail: format!(
                        "fitness values must be finite and strictly positive, found minimum {f_min}"
                    ),
                });
            }
            conservative_shift(nu, p, f_min)
        }
        ShiftStrategy::Custom(mu) => mu,
    };
    Ok((q_op, shift, engine_label))
}

/// [`solve`] writing durable checkpoints to `ckpt.dir` on the configured
/// cadence. A fresh durable solve ignores any snapshots already in the
/// directory (they are overwritten as the new solve progresses); use
/// [`resume_durable`] to continue from one instead.
///
/// # Errors
///
/// Same as [`solve`], plus [`SolveError::Checkpoint`] if the checkpoint
/// directory cannot be created.
pub fn solve_durable<L: Landscape + ?Sized>(
    p: f64,
    landscape: &L,
    config: &SolverConfig,
    ckpt: &CheckpointConfig,
) -> Result<Quasispecies, SolveError> {
    solve_durable_probed(p, landscape, config, ckpt, &mut NullProbe)
}

/// [`solve_durable`] with a telemetry [`Probe`] (see [`solve_probed`]).
///
/// # Errors
///
/// Same as [`solve_durable`].
pub fn solve_durable_probed<L: Landscape + ?Sized, P: Probe>(
    p: f64,
    landscape: &L,
    config: &SolverConfig,
    ckpt: &CheckpointConfig,
    probe: &mut P,
) -> Result<Quasispecies, SolveError> {
    let (q_op, shift, engine_label) = build_uniform_operator(p, landscape, config)?;
    let durable = Durable {
        ckpt: ckpt.clone(),
        resume: false,
        salt: p.to_bits(),
    };
    solve_operator(
        q_op,
        landscape,
        shift,
        engine_label,
        config,
        Some(durable),
        probe,
    )
}

/// Resume an interrupted durable solve from the newest valid snapshot in
/// `ckpt.dir`. For [`Method::Power`] the resumed run is **bit-identical**
/// to the uninterrupted one; for the Krylov methods it warm-restarts
/// from the snapshotted iterate (convergence-preserving).
///
/// # Errors
///
/// [`SolveError::Checkpoint`] if the directory holds no snapshot
/// ([`CheckpointError::NoCheckpoint`]), only corrupt ones, or only
/// snapshots bound to a different problem
/// ([`CheckpointError::ProblemMismatch`]); otherwise same as
/// [`solve_durable`].
pub fn resume_durable<L: Landscape + ?Sized>(
    p: f64,
    landscape: &L,
    config: &SolverConfig,
    ckpt: &CheckpointConfig,
) -> Result<Quasispecies, SolveError> {
    resume_durable_probed(p, landscape, config, ckpt, &mut NullProbe)
}

/// [`resume_durable`] with a telemetry [`Probe`].
///
/// # Errors
///
/// Same as [`resume_durable`].
pub fn resume_durable_probed<L: Landscape + ?Sized, P: Probe>(
    p: f64,
    landscape: &L,
    config: &SolverConfig,
    ckpt: &CheckpointConfig,
    probe: &mut P,
) -> Result<Quasispecies, SolveError> {
    let (q_op, shift, engine_label) = build_uniform_operator(p, landscape, config)?;
    let durable = Durable {
        ckpt: ckpt.clone(),
        resume: true,
        salt: p.to_bits(),
    };
    solve_operator(
        q_op,
        landscape,
        shift,
        engine_label,
        config,
        Some(durable),
        probe,
    )
}

/// Durable variant of [`solve_with_q_operator_probed`]: solve an
/// arbitrary `Q` operator with checkpointing, optionally resuming
/// (`resume = true` requires a valid snapshot on disk). `salt` feeds the
/// problem hash alongside the landscape/config identity — callers pass
/// whatever identifies the operator (e.g. `p.to_bits()` for a uniform
/// model behind a fault-injection wrapper).
///
/// # Errors
///
/// Same as [`solve_with_q_operator`], plus [`SolveError::Checkpoint`]
/// for checkpoint I/O, corruption, mismatch or missing-snapshot
/// conditions.
pub fn solve_with_q_operator_durable_probed<L: Landscape + ?Sized, P: Probe>(
    q_op: Box<dyn LinearOperator>,
    landscape: &L,
    config: &SolverConfig,
    ckpt: &CheckpointConfig,
    resume: bool,
    salt: u64,
    probe: &mut P,
) -> Result<Quasispecies, SolveError> {
    if q_op.len() != landscape.len() {
        return Err(SolveError::DimensionMismatch {
            operator: q_op.len(),
            landscape: landscape.len(),
        });
    }
    let shift = match config.shift {
        ShiftStrategy::Custom(mu) => mu,
        _ => 0.0,
    };
    let durable = Durable {
        ckpt: ckpt.clone(),
        resume,
        salt,
    };
    solve_operator(
        q_op,
        landscape,
        shift,
        "custom".into(),
        config,
        Some(durable),
        probe,
    )
}

/// Solve for an arbitrary [`MutationModel`] (per-site rates, grouped
/// factors, non-binary alphabets) through the fast Kronecker-chain product.
///
/// [`ShiftStrategy::Conservative`] degrades to no shift here: the paper's
/// bound is derived from the uniform model's inverse and does not transfer.
///
/// # Errors
///
/// [`SolveError::DimensionMismatch`] if model and landscape dimensions
/// disagree; [`SolveError::NotConverged`] on budget exhaustion.
pub fn solve_with_model<M: MutationModel + ?Sized, L: Landscape + ?Sized>(
    model: &M,
    landscape: &L,
    config: &SolverConfig,
) -> Result<Quasispecies, SolveError> {
    solve_with_model_probed(model, landscape, config, &mut NullProbe)
}

/// [`solve_with_model`] with a telemetry [`Probe`] (see [`solve_probed`]).
///
/// # Errors
///
/// Same as [`solve_with_model`].
pub fn solve_with_model_probed<M: MutationModel + ?Sized, L: Landscape + ?Sized, P: Probe>(
    model: &M,
    landscape: &L,
    config: &SolverConfig,
    probe: &mut P,
) -> Result<Quasispecies, SolveError> {
    if model.len() != landscape.len() {
        return Err(SolveError::DimensionMismatch {
            operator: model.len(),
            landscape: landscape.len(),
        });
    }
    let q_op: Box<dyn LinearOperator> = Box::new(KroneckerOp::from_model(model));
    let shift = match config.shift {
        ShiftStrategy::Custom(mu) => mu,
        _ => 0.0,
    };
    solve_operator(q_op, landscape, shift, "Kron".into(), config, None, probe)
}

/// Lowest-level entry: solve for an arbitrary `Q` operator.
///
/// # Errors
///
/// [`SolveError::DimensionMismatch`] / [`SolveError::NotConverged`] as
/// above.
pub fn solve_with_q_operator<L: Landscape + ?Sized>(
    q_op: Box<dyn LinearOperator>,
    landscape: &L,
    config: &SolverConfig,
) -> Result<Quasispecies, SolveError> {
    solve_with_q_operator_probed(q_op, landscape, config, &mut NullProbe)
}

/// [`solve_with_q_operator`] with a telemetry [`Probe`] (see
/// [`solve_probed`]).
///
/// # Errors
///
/// Same as [`solve_with_q_operator`].
pub fn solve_with_q_operator_probed<L: Landscape + ?Sized, P: Probe>(
    q_op: Box<dyn LinearOperator>,
    landscape: &L,
    config: &SolverConfig,
    probe: &mut P,
) -> Result<Quasispecies, SolveError> {
    if q_op.len() != landscape.len() {
        return Err(SolveError::DimensionMismatch {
            operator: q_op.len(),
            landscape: landscape.len(),
        });
    }
    let shift = match config.shift {
        ShiftStrategy::Custom(mu) => mu,
        _ => 0.0,
    };
    solve_operator(q_op, landscape, shift, "custom".into(), config, None, probe)
}

/// Durable-solve setup threaded into [`solve_operator`] by the
/// `*_durable` entry points.
struct Durable {
    ckpt: CheckpointConfig,
    /// `true` = continue from the newest valid snapshot (error if none);
    /// `false` = fresh solve, existing snapshots are ignored.
    resume: bool,
    /// Caller-supplied identity component (e.g. the error rate's bits)
    /// folded into the problem hash.
    salt: u64,
}

/// Hash binding checkpoints to their problem: the fitness landscape
/// (exact bits), dimension, caller salt, shift, tolerance, method,
/// formulation and reduction mode — everything that changes the bit
/// stream a resumed solve must reproduce. Engine identity is *excluded*
/// (all serial engines are bit-identical); the parallel engines differ
/// through `parallel_reductions`, which is included.
fn problem_hash(
    fitness: &[f64],
    salt: u64,
    shift: f64,
    config: &SolverConfig,
    parallel_reductions: bool,
) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(fitness.len() as u64);
    for &f in fitness {
        h.write_f64(f);
    }
    h.write_u64(salt);
    h.write_f64(shift);
    h.write_f64(config.tol);
    match config.method {
        Method::Power => h.write_u64(0),
        Method::Lanczos { subspace } => {
            h.write_u64(1);
            h.write_u64(subspace as u64);
        }
        Method::Rqi { warmup } => {
            h.write_u64(2);
            h.write_u64(warmup as u64);
        }
    }
    h.write_u64(match config.formulation {
        Formulation::Right => 0,
        Formulation::Symmetric => 1,
        Formulation::Left => 2,
    });
    h.write_u64(u64::from(parallel_reductions));
    h.finish()
}

/// Forwarding probe that siphons off every residual value so
/// [`SolveStats::residual_history`] can be populated without the solver
/// loops knowing about `SolveStats`. Disabled (and allocation-free) when
/// the wrapped probe is.
struct HistoryProbe<'a, P: Probe> {
    inner: &'a mut P,
    residuals: Vec<f64>,
}

impl<P: Probe> Probe for HistoryProbe<'_, P> {
    #[inline]
    fn enabled(&self) -> bool {
        self.inner.enabled()
    }

    #[inline]
    fn record(&mut self, event: &SolverEvent) {
        if self.inner.enabled() {
            if let SolverEvent::Residual { value, .. } = event {
                self.residuals.push(*value);
            }
        }
        self.inner.record(event);
    }
}

/// Residual-stagnation window wired into the power loop when recovery is
/// enabled: a healthy geometric iteration improves its best residual far
/// more often than once per thousand steps, so only a genuinely stuck
/// (e.g. persistently corrupted) solve trips it.
const STALL_WINDOW: usize = 1_000;
/// Krylov subspace used by the Lanczos rung of the recovery ladder.
const FALLBACK_LANCZOS_SUBSPACE: usize = 60;
/// Power-iteration warm-up steps used by the RQI rung of the ladder.
const FALLBACK_RQI_WARMUP: usize = 10;

/// Result of one solve attempt (the configured method, a restart, or a
/// ladder fallback), with the eigenvector already converted back to the
/// right formulation.
struct Attempt {
    lambda: f64,
    vector_r: Vec<f64>,
    iterations: usize,
    matvecs: usize,
    residual: f64,
    converged: bool,
    breakdown: Option<Breakdown>,
    timed_out: bool,
    method_label: String,
}

impl Attempt {
    /// A best-so-far candidate must at least carry finite numbers and a
    /// non-zero vector; `from_right_eigenvector` can then always
    /// re-normalise it.
    fn usable(&self) -> bool {
        self.lambda.is_finite()
            && self.vector_r.iter().all(|v| v.is_finite())
            && self.vector_r.iter().map(|v| v.abs()).sum::<f64>() > 0.0
    }

    /// Residual for best-so-far comparison: non-finite sorts last.
    fn comparable_residual(&self) -> f64 {
        if self.residual.is_finite() {
            self.residual
        } else {
            f64::INFINITY
        }
    }
}

/// Run one method on `Q` from `start_r` (right formulation); the attempt
/// builds its own `W` in the method's working formulation so ladder rungs
/// can mix formulations over the same `Q` operator.
///
/// With `verify` set, a claimed convergence is only trusted after an
/// explicit residual recomputation `‖Wv − λv‖/‖v‖` against the actual
/// operator (one extra matvec). Krylov methods report subspace residual
/// *estimates*, and a faulty operator can drive the estimate to zero
/// while the true residual stays large; recovery rungs must not be
/// fooled by that. The fault-free first attempt runs with `verify`
/// off, keeping it bit-identical to the seed solver.
#[allow(clippy::too_many_arguments)]
fn run_attempt<P: Probe>(
    q_op: &dyn LinearOperator,
    fitness: &[f64],
    start_r: &[f64],
    method: Method,
    formulation: Formulation,
    shift: f64,
    config: &SolverConfig,
    parallel_reductions: bool,
    verify: bool,
    probe: &mut P,
    ws: &mut Workspace,
    mut durable: Option<&mut CheckpointSession>,
) -> Result<Attempt, SolveError> {
    let form = match method {
        Method::Lanczos { .. } | Method::Rqi { .. } => Formulation::Symmetric,
        Method::Power => formulation,
    };
    let w = WOperator::new(q_op, fitness.to_vec(), form);
    let start = convert_eigenvector(Formulation::Right, form, start_r, fitness);

    // The Krylov methods warm-restart from a snapshotted Ritz iterate:
    // consume the pending resume snapshot here and replace the start
    // vector. (The power loop replays bit-identically instead and
    // consumes the snapshot itself.)
    let krylov_resume = match method {
        Method::Power => None,
        Method::Lanczos { .. } | Method::Rqi { .. } => durable
            .as_deref_mut()
            .and_then(|s| s.take_resume())
            .filter(|snap| snap.iterate.len() == start.len()),
    };
    if let Some(snap) = &krylov_resume {
        probe.record(&SolverEvent::CheckpointLoaded {
            iter: snap.iteration as usize,
        });
    }

    let (
        lambda,
        vector_in_form,
        iterations,
        matvecs,
        residual,
        converged,
        breakdown,
        timed_out,
        label,
    ) = match method {
        Method::Power => {
            let opts = PowerOptions {
                tol: config.tol,
                max_iter: config.max_iter,
                shift,
                parallel_reductions,
                stall_window: config.recover.then_some(STALL_WINDOW),
                deadline: config.deadline,
                compact_threshold: 0.0,
            };
            let out = match durable {
                Some(session) => {
                    session.set_method("power");
                    power_iteration_durable_in(&w, &start, &opts, probe, ws, session)
                }
                None => power_iteration_probed_in(&w, &start, &opts, probe, ws),
            };
            let label = if shift != 0.0 { "Pi+shift" } else { "Pi" };
            (
                out.lambda,
                out.vector,
                out.iterations,
                out.matvecs,
                out.residual,
                out.converged,
                out.breakdown,
                out.timed_out,
                label.to_string(),
            )
        }
        Method::Lanczos { subspace } => {
            let opts = LanczosOptions {
                subspace,
                tol: config.tol,
                deadline: config.deadline,
            };
            let start = match krylov_resume {
                Some(snap) => snap.iterate,
                None => start,
            };
            let out = match durable {
                Some(session) => {
                    session.set_method("lanczos");
                    lanczos_durable(&w, &start, &opts, probe, session)
                }
                None => lanczos_probed(&w, &start, &opts, probe),
            };
            (
                out.lambda,
                out.vector,
                out.matvecs,
                out.matvecs,
                out.residual,
                out.converged,
                out.breakdown,
                out.timed_out,
                "Lanczos".to_string(),
            )
        }
        Method::Rqi { warmup } => {
            // A resumed RQI continues from an already-warm iterate, so
            // the power warm-up is skipped.
            let (start, warmup) = match krylov_resume {
                Some(snap) => (snap.iterate, 0),
                None => (start, warmup),
            };
            let opts = crate::rqi::RqiOptions {
                tol: config.tol,
                warmup,
                deadline: config.deadline,
                ..Default::default()
            };
            let out = match durable {
                Some(session) => {
                    session.set_method("rqi");
                    crate::rqi::rayleigh_quotient_iteration_durable(
                        &w, &start, &opts, probe, session,
                    )?
                }
                None => crate::rqi::rayleigh_quotient_iteration_probed(&w, &start, &opts, probe)?,
            };
            (
                out.lambda,
                out.vector,
                out.outer_iterations,
                out.matvecs,
                out.residual,
                out.converged,
                out.breakdown,
                out.timed_out,
                "RQI".to_string(),
            )
        }
    };

    let (matvecs, residual, converged) = if verify && converged {
        // Shift-invariant check: Wv − λv = (W−µI)v − (λ−µ)v, so the plain
        // operator works for the shifted power rung too.
        let mut wy = ws.take(vector_in_form.len());
        w.apply_into(&vector_in_form, &mut wy);
        for (ri, &vi) in wy.iter_mut().zip(&vector_in_form) {
            *ri -= lambda * vi;
        }
        let vnorm = qs_linalg::norm_l2(&vector_in_form);
        let explicit = qs_linalg::norm_l2(&wy) / vnorm;
        ws.put(wy);
        let threshold = 10.0 * config.tol * lambda.abs().max(1.0);
        if explicit <= threshold {
            (matvecs + 1, residual, true)
        } else {
            probe.record(&SolverEvent::GuardrailTripped {
                kind: "unverified_convergence",
                iter: iterations,
            });
            // Demote to an honest non-converged candidate: the explicit
            // residual (NaN → unusable downstream) replaces the estimate.
            (matvecs + 1, explicit, false)
        }
    } else {
        (matvecs, residual, converged)
    };

    let vector_r = convert_eigenvector(form, Formulation::Right, &vector_in_form, fitness);
    // The attempt's iterate escaped the power loop; park it so the next
    // attempt (restart or ladder rung) is a pool hit, not an allocation.
    ws.put(vector_in_form);
    Ok(Attempt {
        lambda,
        vector_r,
        iterations,
        matvecs,
        residual,
        converged,
        breakdown,
        timed_out,
        method_label: label,
    })
}

/// The fallback rungs tried after `failed` broke down: RQI → Lanczos →
/// shifted power, skipping the method that already failed.
fn fallback_chain(failed: Method, n: usize) -> Vec<(&'static str, Method)> {
    let mut chain = Vec::new();
    if !matches!(failed, Method::Rqi { .. }) {
        chain.push((
            "fallback_rqi",
            Method::Rqi {
                warmup: FALLBACK_RQI_WARMUP,
            },
        ));
    }
    if !matches!(failed, Method::Lanczos { .. }) {
        chain.push((
            "fallback_lanczos",
            Method::Lanczos {
                subspace: FALLBACK_LANCZOS_SUBSPACE.min(n),
            },
        ));
    }
    if !matches!(failed, Method::Power) {
        chain.push(("fallback_shifted_power", Method::Power));
    }
    chain
}

fn solve_operator<L: Landscape + ?Sized, P: Probe>(
    q_op: Box<dyn LinearOperator>,
    landscape: &L,
    shift: f64,
    engine_label: String,
    config: &SolverConfig,
    durable: Option<Durable>,
    probe: &mut P,
) -> Result<Quasispecies, SolveError> {
    if !(config.tol.is_finite() && config.tol > 0.0) {
        return Err(SolveError::InvalidConfig {
            parameter: "tol",
            detail: format!(
                "residual tolerance must be finite and positive, got {}",
                config.tol
            ),
        });
    }
    let fitness = landscape.materialize();
    if let Some(bad) = fitness.iter().find(|f| !(f.is_finite() && **f > 0.0)) {
        return Err(SolveError::InvalidConfig {
            parameter: "fitness",
            detail: format!("fitness values must be finite and strictly positive, found {bad}"),
        });
    }
    let parallel_reductions = engine_label.contains("-par");

    // Durable setup: open the checkpoint writer and — on resume — load
    // and validate the newest snapshot before any iteration runs.
    let mut history_seed = Vec::new();
    let mut session = match durable {
        Some(d) => {
            let problem = problem_hash(&fitness, d.salt, shift, config, parallel_reductions);
            let resume_snap = if d.resume {
                match load_latest(&d.ckpt.dir, problem) {
                    Ok(Some(snap)) => Some(snap),
                    Ok(None) => {
                        return Err(SolveError::Checkpoint(CheckpointError::NoCheckpoint {
                            dir: d.ckpt.dir.clone(),
                        }))
                    }
                    Err(e) => {
                        probe.record(&SolverEvent::CheckpointRejected { reason: e.label() });
                        return Err(SolveError::Checkpoint(e));
                    }
                }
            } else {
                None
            };
            if probe.enabled() {
                if let Some(snap) = &resume_snap {
                    history_seed = snap.residual_history.clone();
                }
            }
            let writer = Checkpointer::create(d.ckpt)?;
            Some(CheckpointSession::new(
                writer,
                problem,
                shift,
                config.tol,
                config.history_cap,
                resume_snap,
            ))
        }
        None => None,
    };

    let mut probe = HistoryProbe {
        inner: probe,
        residuals: history_seed,
    };
    // Paper's start vector in the right formulation.
    let mut start_r = fitness.clone();
    qs_linalg::vec_ops::normalize_l1(&mut start_r);

    // One warmed buffer pool for every attempt: the power loop's working
    // set (iterate, image, residual) plus the verification buffer all come
    // out of here, so pool-miss bytes after `mark` measure exactly what
    // the solve allocated beyond its steady state.
    let mut ws = Workspace::new();
    ws.warm(fitness.len(), 4);
    ws.mark();

    let first = run_attempt(
        q_op.as_ref(),
        &fitness,
        &start_r,
        config.method,
        config.formulation,
        shift,
        config,
        parallel_reductions,
        false,
        &mut probe,
        &mut ws,
        session.as_mut(),
    )?;
    let mut total_matvecs = first.matvecs;
    let mut total_iterations = first.iterations;

    let (chosen, degraded, recovered_from) = if first.converged {
        (first, false, None)
    } else if let Some(b) = first.breakdown {
        let kind = b.label();
        if !config.recover {
            return Err(SolveError::NumericalBreakdown {
                kind,
                iterations: first.iterations,
                residual: first.residual,
            });
        }

        // --- Recovery ladder.
        let mut recovered: Option<Attempt> = None;
        let mut best = first.usable().then_some(first);

        // Rung 1: restart the same method from a sanitised iterate (the
        // best usable vector so far, re-normalised; else the paper start).
        probe.record(&SolverEvent::RecoveryAction {
            action: "restart_renormalised",
        });
        if let Some(s) = session.as_mut() {
            s.set_rung(1);
        }
        let restart_start = match &best {
            Some(a) => {
                let mut s = a.vector_r.clone();
                qs_linalg::vec_ops::normalize_l1(&mut s);
                s
            }
            None => start_r.clone(),
        };
        let attempt = run_attempt(
            q_op.as_ref(),
            &fitness,
            &restart_start,
            config.method,
            config.formulation,
            shift,
            config,
            parallel_reductions,
            true,
            &mut probe,
            &mut ws,
            session.as_mut(),
        )?;
        total_matvecs += attempt.matvecs;
        total_iterations += attempt.iterations;
        if attempt.converged {
            recovered = Some(attempt);
        } else if attempt.usable()
            && best
                .as_ref()
                .map(|b| attempt.comparable_residual() < b.comparable_residual())
                .unwrap_or(true)
        {
            best = Some(attempt);
        }

        // Rungs 2–3: fall back through the other methods from a fresh
        // paper start (corrupt state is not propagated into fallbacks).
        if recovered.is_none() {
            for (rung, (action, method)) in fallback_chain(config.method, fitness.len())
                .into_iter()
                .enumerate()
            {
                probe.record(&SolverEvent::RecoveryAction { action });
                if let Some(s) = session.as_mut() {
                    s.set_rung(2 + rung as u32);
                }
                let attempt = run_attempt(
                    q_op.as_ref(),
                    &fitness,
                    &start_r,
                    method,
                    config.formulation,
                    shift,
                    config,
                    parallel_reductions,
                    true,
                    &mut probe,
                    &mut ws,
                    session.as_mut(),
                )?;
                total_matvecs += attempt.matvecs;
                total_iterations += attempt.iterations;
                if attempt.converged {
                    recovered = Some(attempt);
                    break;
                }
                if attempt.usable()
                    && best
                        .as_ref()
                        .map(|b| attempt.comparable_residual() < b.comparable_residual())
                        .unwrap_or(true)
                {
                    best = Some(attempt);
                }
            }
        }

        match recovered {
            Some(a) => (a, false, Some(kind.to_string())),
            None => match best {
                // Last rung: hand back the best usable iterate, flagged.
                Some(a) => {
                    probe.record(&SolverEvent::RecoveryAction {
                        action: "best_so_far_degraded",
                    });
                    (a, true, Some(kind.to_string()))
                }
                None => {
                    return Err(SolveError::NumericalBreakdown {
                        kind,
                        iterations: total_iterations,
                        residual: f64::NAN,
                    });
                }
            },
        }
    } else if first.timed_out && first.usable() {
        // Deadline expiry is a budget decision, not a failure: hand back
        // the best-so-far iterate, flagged. (An unusable timed-out
        // iterate — non-finite without a classified breakdown — falls
        // through to the NotConverged error below.)
        probe.record(&SolverEvent::RecoveryAction {
            action: "deadline_best_so_far",
        });
        (first, true, Some("deadline_expired".to_string()))
    } else {
        // Honest budget exhaustion: no breakdown, nothing to recover from.
        return Err(SolveError::NotConverged {
            iterations: first.iterations,
            residual: first.residual,
        });
    };

    probe.record(&SolverEvent::SolveAllocation {
        bytes: ws.bytes_since_mark(),
    });

    let mut residuals = probe.residuals;
    downsample_uniform(&mut residuals, config.history_cap);
    let stats = SolveStats {
        iterations: chosen.iterations,
        matvecs: total_matvecs,
        residual: chosen.residual,
        converged: chosen.converged,
        engine: engine_label,
        method: chosen.method_label,
        shift,
        degraded,
        recovered_from,
        deadline_expired: chosen.timed_out,
        residual_history: (!residuals.is_empty()).then_some(residuals),
        warm_start: None,
    };
    Ok(Quasispecies::from_right_eigenvector(
        chosen.lambda,
        chosen.vector_r,
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qs_landscape::{Random, SinglePeak, Tabulated};
    use qs_mutation::{PerSite, SiteProcess};

    fn assert_close(a: f64, b: f64, tol: f64, what: &str) {
        assert!((a - b).abs() < tol, "{what}: {a} vs {b}");
    }

    #[test]
    fn default_solve_single_peak() {
        let landscape = SinglePeak::new(8, 2.0, 1.0);
        let qs = solve(0.01, &landscape, &SolverConfig::default()).unwrap();
        assert!(qs.stats.converged);
        assert_eq!(qs.stats.engine, "Fmmp");
        assert_eq!(qs.stats.method, "Pi+shift");
        assert!(qs.lambda > 1.5 && qs.lambda < 2.0);
        assert_eq!(qs.dominant_sequence(), 0);
        let total: f64 = qs.concentrations.iter().sum();
        assert_close(total, 1.0, 1e-12, "normalisation");
    }

    #[test]
    fn all_engines_agree() {
        let nu = 7u32;
        let p = 0.02;
        let landscape = Random::new(nu, 5.0, 1.0, 55);
        let reference = solve(p, &landscape, &SolverConfig::default()).unwrap();
        for engine in [
            Engine::FmmpFused,
            Engine::FmmpParallel,
            Engine::FmmpParallelFused,
            Engine::Xmvp { d_max: nu },
            Engine::Smvp,
            Engine::Kronecker,
        ] {
            let cfg = SolverConfig {
                engine,
                ..Default::default()
            };
            let qs = solve(p, &landscape, &cfg).unwrap();
            assert_close(qs.lambda, reference.lambda, 1e-10, &engine.label(nu));
            for (a, b) in qs.concentrations.iter().zip(&reference.concentrations) {
                assert_close(*a, *b, 1e-9, "concentration");
            }
        }
    }

    #[test]
    fn formulations_agree() {
        let nu = 6u32;
        let p = 0.03;
        let landscape = Random::new(nu, 5.0, 1.0, 8);
        let mut results = Vec::new();
        for form in [
            Formulation::Right,
            Formulation::Symmetric,
            Formulation::Left,
        ] {
            let cfg = SolverConfig {
                formulation: form,
                ..Default::default()
            };
            results.push(solve(p, &landscape, &cfg).unwrap());
        }
        for pair in results.windows(2) {
            assert_close(pair[0].lambda, pair[1].lambda, 1e-10, "lambda");
            for (a, b) in pair[0].concentrations.iter().zip(&pair[1].concentrations) {
                assert_close(*a, *b, 1e-9, "concentration across formulations");
            }
        }
    }

    #[test]
    fn lanczos_method_agrees_with_power() {
        let nu = 8u32;
        let p = 0.015;
        let landscape = Random::new(nu, 5.0, 1.0, 3);
        let pi = solve(p, &landscape, &SolverConfig::default()).unwrap();
        let lz = solve(
            p,
            &landscape,
            &SolverConfig {
                method: Method::Lanczos { subspace: 60 },
                ..Default::default()
            },
        )
        .unwrap();
        assert_close(pi.lambda, lz.lambda, 1e-9, "lambda");
        assert!(lz.stats.matvecs < pi.stats.matvecs);
        assert_eq!(lz.stats.method, "Lanczos");
    }

    #[test]
    fn rqi_method_agrees_with_power() {
        let nu = 8u32;
        let p = 0.02;
        let landscape = Random::new(nu, 5.0, 1.0, 14);
        let pi = solve(p, &landscape, &SolverConfig::default()).unwrap();
        let rqi = solve(
            p,
            &landscape,
            &SolverConfig {
                method: Method::Rqi { warmup: 10 },
                tol: 1e-11,
                ..Default::default()
            },
        )
        .unwrap();
        assert_close(pi.lambda, rqi.lambda, 1e-8, "lambda");
        assert_eq!(rqi.stats.method, "RQI");
        for (a, b) in pi.concentrations.iter().zip(&rqi.concentrations) {
            assert_close(*a, *b, 1e-7, "concentration");
        }
    }

    #[test]
    fn xmvp_truncated_approximates() {
        // Xmvp(5) with τ = 1e-10 reproduces the paper's approximate-solver
        // setting: concentrations within ~1e-8 of exact at p = 0.01.
        let nu = 9u32;
        let landscape = Random::new(nu, 5.0, 1.0, 99);
        let exact = solve(0.01, &landscape, &SolverConfig::default()).unwrap();
        let approx = solve(
            0.01,
            &landscape,
            &SolverConfig {
                engine: Engine::Xmvp { d_max: 5 },
                tol: 1e-10,
                ..Default::default()
            },
        )
        .unwrap();
        assert_close(exact.lambda, approx.lambda, 1e-6, "lambda");
        for (a, b) in exact.concentrations.iter().zip(&approx.concentrations) {
            assert_close(*a, *b, 1e-6, "concentration");
        }
    }

    #[test]
    fn general_mutation_model_solve() {
        // Asymmetric per-site rates: only reachable through the general path.
        let model = PerSite::new(vec![
            SiteProcess::new(0.01, 0.02),
            SiteProcess::new(0.005, 0.005),
            SiteProcess::new(0.03, 0.01),
            SiteProcess::new(0.02, 0.02),
            SiteProcess::new(0.0, 0.05),
        ]);
        let landscape = Random::new(5, 5.0, 1.0, 4);
        let qs = solve_with_model(&model, &landscape, &SolverConfig::default()).unwrap();
        assert!(qs.stats.converged);
        assert!(qs.concentrations.iter().all(|&c| c >= 0.0));
        // Cross-check against a dense solve of Q·F.
        use qs_mutation::MutationModel;
        let mut wd = model.dense();
        let f = qs_landscape::Landscape::materialize(&landscape);
        for i in 0..wd.rows() {
            for (j, &fj) in f.iter().enumerate() {
                wd[(i, j)] *= fj;
            }
        }
        let eig = qs_linalg::dominant_eigenpair(&wd, Some(&f), 1e-13, 500_000);
        assert_close(qs.lambda, eig.value, 1e-8, "general model lambda");
    }

    #[test]
    fn dimension_mismatch_detected() {
        let model = PerSite::symmetric(&[0.01; 4]);
        let landscape = SinglePeak::new(5, 2.0, 1.0);
        let err = solve_with_model(&model, &landscape, &SolverConfig::default()).unwrap_err();
        assert!(matches!(err, SolveError::DimensionMismatch { .. }));
        assert!(err.to_string().contains("does not match"));
    }

    #[test]
    fn non_convergence_is_an_error() {
        let landscape = SinglePeak::new(8, 2.0, 1.0);
        let cfg = SolverConfig {
            tol: 1e-15,
            max_iter: 2,
            ..Default::default()
        };
        let err = solve(0.01, &landscape, &cfg).unwrap_err();
        assert!(matches!(
            err,
            SolveError::NotConverged { iterations: 2, .. }
        ));
    }

    #[test]
    fn equal_fitness_gives_uniform_distribution() {
        // The paper's sanity case: constant F ⇒ bistochastic W ⇒ uniform x.
        let landscape = Tabulated::new(vec![3.0; 64]);
        let qs = solve(0.04, &landscape, &SolverConfig::default()).unwrap();
        for &c in &qs.concentrations {
            assert_close(c, 1.0 / 64.0, 1e-10, "uniform concentration");
        }
        assert_close(qs.lambda, 3.0, 1e-10, "lambda = common fitness");
    }

    #[test]
    fn engine_labels() {
        assert_eq!(Engine::Fmmp.label(10), "Fmmp");
        assert_eq!(Engine::FmmpFused.label(10), "Fmmp-fused");
        assert_eq!(Engine::FmmpParallel.label(10), "Fmmp-par");
        assert_eq!(Engine::FmmpParallelFused.label(10), "Fmmp-par-fused");
        assert_eq!(Engine::Xmvp { d_max: 10 }.label(10), "Xmvp(ν=10)");
        assert_eq!(Engine::Xmvp { d_max: 5 }.label(10), "Xmvp(5)");
    }

    #[test]
    fn fused_engine_solve_matches_reference_bit_for_bit() {
        // The fused kernels are bit-identical to the staged reference, so
        // the entire solve — same start, same reductions — must be too.
        let landscape = Random::new(9, 5.0, 1.0, 17);
        let reference = solve(0.015, &landscape, &SolverConfig::default()).unwrap();
        let fused = solve(
            0.015,
            &landscape,
            &SolverConfig {
                engine: Engine::FmmpFused,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(reference.lambda.to_bits(), fused.lambda.to_bits());
        assert_eq!(reference.stats.iterations, fused.stats.iterations);
        for (a, b) in reference.concentrations.iter().zip(&fused.concentrations) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn null_probe_solve_is_bit_identical_and_has_no_history() {
        // Satellite check: solve() and solve_probed(.., NullProbe) must be
        // the *same* computation, bit for bit.
        let landscape = Random::new(8, 5.0, 1.0, 21);
        for method in [
            Method::Power,
            Method::Lanczos { subspace: 60 },
            Method::Rqi { warmup: 10 },
        ] {
            let cfg = SolverConfig {
                method,
                tol: 1e-11,
                ..Default::default()
            };
            let plain = solve(0.02, &landscape, &cfg).unwrap();
            let probed = solve_probed(0.02, &landscape, &cfg, &mut NullProbe).unwrap();
            assert_eq!(plain.lambda.to_bits(), probed.lambda.to_bits());
            assert_eq!(
                plain.stats.residual.to_bits(),
                probed.stats.residual.to_bits()
            );
            assert_eq!(plain.stats.iterations, probed.stats.iterations);
            assert_eq!(plain.stats.matvecs, probed.stats.matvecs);
            for (a, b) in plain.concentrations.iter().zip(&probed.concentrations) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            assert!(plain.stats.residual_history.is_none());
            assert!(probed.stats.residual_history.is_none());
        }
    }

    #[test]
    fn recording_probe_history_is_self_consistent() {
        use qs_telemetry::RecordingProbe;
        let landscape = Random::new(8, 5.0, 1.0, 21);
        let mut rec = RecordingProbe::new();
        let qs = solve_probed(0.02, &landscape, &SolverConfig::default(), &mut rec).unwrap();
        // Probe stream and SolveStats must tell the same story.
        let history = qs.stats.residual_history.as_ref().expect("history");
        assert_eq!(history, &rec.residual_history());
        assert_eq!(history.last().copied(), Some(qs.stats.residual));
        assert_eq!(
            rec.last_residual().map(f64::to_bits),
            Some(qs.stats.residual.to_bits())
        );
        assert_eq!(rec.iterations(), qs.stats.iterations);
        match rec.terminal() {
            Some(&SolverEvent::Converged {
                iterations,
                matvecs,
                residual,
                lambda,
            }) => {
                assert_eq!(iterations, qs.stats.iterations);
                assert_eq!(matvecs, qs.stats.matvecs);
                assert_eq!(residual.to_bits(), qs.stats.residual.to_bits());
                assert_eq!(lambda.to_bits(), qs.lambda.to_bits());
            }
            other => panic!("expected Converged terminal event, got {other:?}"),
        }
        // The probed run itself matches the plain one bit for bit.
        let plain = solve(0.02, &landscape, &SolverConfig::default()).unwrap();
        assert_eq!(plain.lambda.to_bits(), qs.lambda.to_bits());
    }

    /// `Q` wrapper that overwrites `y[0]` on applications
    /// `from..from + times` (`times = usize::MAX` ⇒ permanent). With
    /// `alternate` the injected value flips sign on odd applications, so a
    /// persistent fault cannot masquerade as a fixed point of the
    /// corrupted map.
    struct FaultyQ<A> {
        inner: A,
        from: usize,
        times: usize,
        value: f64,
        alternate: bool,
        count: std::sync::atomic::AtomicUsize,
    }

    impl<A> FaultyQ<A> {
        fn new(inner: A, from: usize, times: usize, value: f64, alternate: bool) -> Self {
            FaultyQ {
                inner,
                from,
                times,
                value,
                alternate,
                count: std::sync::atomic::AtomicUsize::new(0),
            }
        }
    }

    impl<A: LinearOperator> LinearOperator for FaultyQ<A> {
        fn len(&self) -> usize {
            self.inner.len()
        }

        fn apply_into(&self, x: &[f64], y: &mut [f64]) {
            self.inner.apply_into(x, y);
            let k = self
                .count
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if k >= self.from && k - self.from < self.times {
                let sign = if self.alternate && k % 2 == 1 {
                    -1.0
                } else {
                    1.0
                };
                y[0] = sign * self.value;
            }
        }
    }

    #[test]
    fn invalid_tolerance_is_a_typed_error() {
        let landscape = SinglePeak::new(4, 2.0, 1.0);
        for tol in [0.0, -1e-10, f64::NAN, f64::INFINITY] {
            let cfg = SolverConfig {
                tol,
                ..Default::default()
            };
            match solve(0.01, &landscape, &cfg) {
                Err(SolveError::InvalidConfig {
                    parameter: "tol", ..
                }) => {}
                other => panic!("tol {tol}: expected InvalidConfig, got {other:?}"),
            }
        }
    }

    #[test]
    fn invalid_error_rate_is_a_typed_error() {
        let landscape = SinglePeak::new(4, 2.0, 1.0);
        for p in [0.0, -0.1, 0.5000001, 1.0, f64::NAN] {
            match solve(p, &landscape, &SolverConfig::default()) {
                Err(SolveError::InvalidConfig { parameter: "p", .. }) => {}
                other => panic!("p {p}: expected InvalidConfig, got {other:?}"),
            }
        }
    }

    #[test]
    fn non_positive_fitness_is_a_typed_error() {
        struct ZeroFitness;
        impl qs_landscape::Landscape for ZeroFitness {
            fn nu(&self) -> u32 {
                3
            }
            fn fitness(&self, i: u64) -> f64 {
                if i == 5 {
                    0.0
                } else {
                    1.5
                }
            }
        }
        match solve(0.01, &ZeroFitness, &SolverConfig::default()) {
            Err(SolveError::InvalidConfig {
                parameter: "fitness",
                ..
            }) => {}
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn transient_nan_fault_recovers_via_restart() {
        use qs_telemetry::RecordingProbe;
        let nu = 6u32;
        let p = 0.01;
        let landscape = SinglePeak::new(nu, 2.0, 1.0);
        let q = FaultyQ::new(Fmmp::new(nu, p), 3, 1, f64::NAN, false);
        let mut rec = RecordingProbe::new();
        let qs = solve_with_q_operator_probed(
            Box::new(q),
            &landscape,
            &SolverConfig::default(),
            &mut rec,
        )
        .expect("transient fault must be recovered");
        assert!(qs.stats.converged);
        assert!(!qs.stats.degraded);
        assert_eq!(
            qs.stats.recovered_from.as_deref(),
            Some("non_finite_iterate")
        );
        assert!(rec.recovery_actions().contains(&"restart_renormalised"));
        assert!(rec.guardrail_kinds().contains(&"non_finite_iterate"));
        let total: f64 = qs.concentrations.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(qs.concentrations.iter().all(|c| c.is_finite() && *c >= 0.0));
    }

    #[test]
    fn permanent_nan_fault_is_a_typed_breakdown_not_a_panic() {
        let nu = 5u32;
        let p = 0.02;
        let landscape = SinglePeak::new(nu, 2.0, 1.0);
        let q = FaultyQ::new(Fmmp::new(nu, p), 0, usize::MAX, f64::NAN, false);
        match solve_with_q_operator(Box::new(q), &landscape, &SolverConfig::default()) {
            Err(SolveError::NumericalBreakdown { kind, .. }) => {
                assert_eq!(kind, "non_finite_iterate");
            }
            other => panic!("expected NumericalBreakdown, got {other:?}"),
        }
    }

    #[test]
    fn recover_off_surfaces_the_breakdown_immediately() {
        use qs_telemetry::RecordingProbe;
        let nu = 5u32;
        let p = 0.02;
        let landscape = SinglePeak::new(nu, 2.0, 1.0);
        let q = FaultyQ::new(Fmmp::new(nu, p), 2, 1, f64::NAN, false);
        let cfg = SolverConfig {
            recover: false,
            ..Default::default()
        };
        let mut rec = RecordingProbe::new();
        match solve_with_q_operator_probed(Box::new(q), &landscape, &cfg, &mut rec) {
            Err(SolveError::NumericalBreakdown { kind, .. }) => {
                assert_eq!(kind, "non_finite_iterate");
            }
            other => panic!("expected NumericalBreakdown, got {other:?}"),
        }
        // No recovery was attempted.
        assert!(rec.recovery_actions().is_empty());
    }

    #[test]
    fn persistent_perturbation_yields_degraded_result() {
        use qs_telemetry::RecordingProbe;
        let nu = 6u32;
        let p = 0.02;
        let landscape = Random::new(nu, 5.0, 1.0, 7);
        let q = FaultyQ::new(Fmmp::new(nu, p), 0, usize::MAX, 0.5, true);
        let mut rec = RecordingProbe::new();
        let qs = solve_with_q_operator_probed(
            Box::new(q),
            &landscape,
            &SolverConfig::default(),
            &mut rec,
        )
        .expect("persistent fault must degrade, not fail");
        assert!(qs.stats.degraded);
        assert!(!qs.stats.converged);
        assert!(qs.stats.recovered_from.is_some());
        assert!(rec.recovery_actions().contains(&"best_so_far_degraded"));
        // Even degraded output is a valid distribution.
        let total: f64 = qs.concentrations.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(qs.concentrations.iter().all(|c| c.is_finite() && *c >= 0.0));
    }

    #[test]
    fn rqi_history_ends_with_outer_residual() {
        use qs_telemetry::RecordingProbe;
        // RQI interleaves inner MINRES residuals (lambda = 0) with outer
        // ones; the *last* entry is always the outer residual SolveStats
        // reports.
        let landscape = Random::new(7, 5.0, 1.0, 5);
        let mut rec = RecordingProbe::new();
        let cfg = SolverConfig {
            method: Method::Rqi { warmup: 10 },
            tol: 1e-11,
            ..Default::default()
        };
        let qs = solve_probed(0.02, &landscape, &cfg, &mut rec).unwrap();
        let history = qs.stats.residual_history.as_ref().expect("history");
        assert_eq!(history.last().copied(), Some(qs.stats.residual));
        assert!(history.len() > qs.stats.iterations, "inner solves included");
    }
}
