//! Durable checkpoint/resume for long-running solves.
//!
//! Large-ν stationary-distribution runs and (ν, p)-grid sweeps are
//! exactly the jobs that die to preemption or node loss; the recovery
//! ladder heals in-process breakdowns but nothing survives process
//! death. This module makes solver state durable:
//!
//! * [`Snapshot`] — a versioned, FNV-checksummed binary image of one
//!   solver loop's resumable state: the current iterate, iteration and
//!   matvec counters, residual history, stall-detector state, the active
//!   method and recovery-ladder rung, the shift/tolerance config, and a
//!   *problem hash* binding the snapshot to the landscape/ν/p it was
//!   taken from (a snapshot can never be resumed against the wrong
//!   problem).
//! * [`Checkpointer`] — an atomic, double-buffered writer: each snapshot
//!   is written to a temporary file, fsynced, then renamed over the
//!   *older* of two slots (`ckpt_a.qsnap` / `ckpt_b.qsnap`), so a crash
//!   mid-write — even a torn write injected by the fault harness —
//!   always leaves the previous good snapshot intact.
//! * [`load_latest`] — slot selection + validation on resume: the newest
//!   decodable snapshot matching the expected problem hash wins; a torn
//!   slot next to a good one is tolerated (the good one is returned); a
//!   checkpoint directory with *only* corrupt snapshots, or a snapshot
//!   from a different problem, is a typed [`CheckpointError`] — never a
//!   panic, never a silent wrong-problem resume.
//!
//! Because every kernel in this workspace is bit-identical across code
//! paths, a power solve resumed from a snapshot replays the exact FP
//! sequence of the uninterrupted run: the snapshot captures the
//! normalized iterate *after* the end-of-iteration update, and resume
//! re-enters the loop without renormalising. Krylov methods (Lanczos,
//! RQI/MINRES) snapshot their current best Ritz iterate and resume by
//! warm-restarting from it — convergence-preserving rather than
//! replay-identical; see DESIGN.md §8 for the full crash model.

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Version tag embedded in every snapshot; bumped on any change to the
/// binary layout. Version history:
///
/// * **1** — base layout (header, config, stall state, residual history,
///   iterate).
/// * **2** — appends optional block-solve state: the compacted slab's
///   live width, the slot→column owner map, and per-column freeze
///   records (state code, λ, residual, freeze iteration), so a resumed
///   block solve never re-runs already-converged columns.
///
/// Decoders accept version 1 (the block state decodes as absent — the
/// old convergence-preserving resume) and the current version; anything
/// else is a typed error.
pub const FORMAT_VERSION: u32 = 2;

/// Oldest snapshot format version this build still decodes.
pub const MIN_FORMAT_VERSION: u32 = 1;

/// File magic opening every snapshot (8 bytes, fixed).
const MAGIC: [u8; 8] = *b"QSNAPSHT";

/// The two double-buffered snapshot slots inside a checkpoint directory.
const SLOTS: [&str; 2] = ["ckpt_a.qsnap", "ckpt_b.qsnap"];

/// Longest method label a snapshot will frame. Real labels are a few
/// bytes ("power", "block_power"); the cap exists so a pathological
/// label is a typed [`CheckpointError::MethodTooLong`] at encode time
/// instead of a silently truncated `u32` length on disk.
pub const MAX_METHOD_LEN: usize = 4096;

/// Scratch name for the atomic write (same directory as the slots, so
/// the rename is atomic on POSIX filesystems).
const TMP_NAME: &str = "ckpt.tmp";

/// Incremental FNV-1a (64-bit) hasher over raw bytes.
///
/// Used both for the trailing snapshot checksum and for the problem
/// hash that binds a snapshot to its landscape/ν/p. Dependency-free and
/// stable across platforms (all multi-byte values are folded in as
/// little-endian bytes).
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv64(Self::OFFSET)
    }

    /// Fold raw bytes into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(Self::PRIME);
        }
        self.0 = h;
    }

    /// Fold a `u64` in as its little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Fold an `f64` in by exact bit pattern (NaN payloads included);
    /// two hashes agree iff the floats are bitwise equal.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// Why a checkpoint operation failed. Every variant is a typed,
/// recoverable error — corrupt or foreign snapshots are *rejected*,
/// never trusted and never a panic.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointError {
    /// Filesystem operation failed (the underlying `io::Error` is
    /// stringified so the variant stays `Clone + PartialEq`).
    Io {
        /// Path the operation touched.
        path: PathBuf,
        /// Stringified `io::Error`.
        detail: String,
    },
    /// The file is shorter than the fixed header + checksum frame.
    TooShort {
        /// Observed file length in bytes.
        len: usize,
    },
    /// The file does not open with the snapshot magic — not a snapshot.
    BadMagic,
    /// The snapshot was written by an unknown format version.
    UnsupportedVersion {
        /// Version tag found in the header.
        found: u32,
    },
    /// The trailing FNV-1a checksum does not match the payload: the
    /// file is torn or bit-rotted.
    ChecksumMismatch,
    /// The payload framing is inconsistent (a length field points past
    /// the end of the file, trailing garbage, non-UTF-8 method label).
    Malformed {
        /// What was inconsistent.
        detail: String,
    },
    /// The snapshot is valid but was taken from a *different problem*
    /// (landscape/ν/p/config hash mismatch); resuming it would silently
    /// compute the wrong answer, so it is refused.
    ProblemMismatch {
        /// Problem hash of the solve asking to resume.
        expected: u64,
        /// Problem hash stored in the snapshot.
        found: u64,
    },
    /// Resume was requested but the checkpoint directory holds no
    /// snapshot at all.
    NoCheckpoint {
        /// The directory that was searched.
        dir: PathBuf,
    },
    /// The snapshot's method label exceeds [`MAX_METHOD_LEN`] and
    /// cannot be framed; encoding is refused rather than writing a
    /// corrupt length field.
    MethodTooLong {
        /// Byte length of the offending method label.
        len: usize,
    },
}

impl CheckpointError {
    /// Stable `snake_case` label for telemetry
    /// (`checkpoint_rejected` events) and log grepping.
    pub fn label(&self) -> &'static str {
        match self {
            CheckpointError::Io { .. } => "io_error",
            CheckpointError::TooShort { .. } => "too_short",
            CheckpointError::BadMagic => "bad_magic",
            CheckpointError::UnsupportedVersion { .. } => "unsupported_version",
            CheckpointError::ChecksumMismatch => "checksum_mismatch",
            CheckpointError::Malformed { .. } => "malformed",
            CheckpointError::ProblemMismatch { .. } => "problem_mismatch",
            CheckpointError::NoCheckpoint { .. } => "no_checkpoint",
            CheckpointError::MethodTooLong { .. } => "method_too_long",
        }
    }
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { path, detail } => {
                write!(f, "checkpoint I/O error at '{}': {detail}", path.display())
            }
            CheckpointError::TooShort { len } => {
                write!(
                    f,
                    "checkpoint file too short ({len} bytes) to be a snapshot"
                )
            }
            CheckpointError::BadMagic => f.write_str("checkpoint file lacks the snapshot magic"),
            CheckpointError::UnsupportedVersion { found } => write!(
                f,
                "checkpoint format version {found} is not supported \
                 (this build reads versions {MIN_FORMAT_VERSION} through {FORMAT_VERSION})"
            ),
            CheckpointError::ChecksumMismatch => {
                f.write_str("checkpoint checksum mismatch: the snapshot is torn or corrupt")
            }
            CheckpointError::Malformed { detail } => {
                write!(f, "checkpoint payload is malformed: {detail}")
            }
            CheckpointError::ProblemMismatch { expected, found } => write!(
                f,
                "checkpoint was taken from a different problem \
                 (expected hash {expected:#018x}, snapshot has {found:#018x})"
            ),
            CheckpointError::NoCheckpoint { dir } => write!(
                f,
                "no checkpoint found in '{}' (nothing to resume)",
                dir.display()
            ),
            CheckpointError::MethodTooLong { len } => write!(
                f,
                "method label of {len} bytes exceeds the {MAX_METHOD_LEN}-byte \
                 snapshot frame limit"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// One durable image of a solver loop's resumable state.
///
/// Field semantics (what exactly `iterate` means, and what resume
/// guarantees) depend on `method`:
///
/// * `"power"` / `"block_power"` — the normalized iterate(s) *after*
///   the end-of-iteration update; resume replays bit-identically.
/// * `"lanczos"` / `"rqi"` / `"minres"` — the current best (Ritz)
///   iterate; resume warm-restarts from it (convergence-preserving).
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Hash binding the snapshot to its problem (landscape fitness
    /// values, ν, p, shift, tolerance, method, formulation, reduction
    /// mode); see the solver's durable entry points.
    pub problem: u64,
    /// Outer iterations completed when the snapshot was taken.
    pub iteration: u64,
    /// Operator applications performed so far.
    pub matvecs: u64,
    /// Recovery-ladder rung the solve was on (0 = first attempt).
    /// Snapshots taken mid-recovery are written for inspection but are
    /// *not* consumed on resume (resume restarts the ladder instead).
    pub rung: u32,
    /// Method label, e.g. `"power"`, `"lanczos"`, `"block_power"`.
    pub method: String,
    /// Spectral shift in effect (0.0 for none).
    pub shift: f64,
    /// Convergence tolerance in effect.
    pub tol: f64,
    /// Stall-detector best-residual-seen (`f64::INFINITY` when fresh).
    pub stall_best: f64,
    /// Stall-detector consecutive non-improving count.
    pub stall_count: u64,
    /// Residual history accumulated so far (already capped/downsampled
    /// by the session's history policy).
    pub residual_history: Vec<f64>,
    /// The resumable iterate (see the method-dependent semantics above).
    /// For `"block_power"` this is the whole column slab in *slot*
    /// order, length `k * n` (see [`Snapshot::block`] for the
    /// slot→column map).
    pub iterate: Vec<f64>,
    /// Block-solve freeze bookkeeping (format version ≥ 2). `None` for
    /// single-vector snapshots and for version-1 images, where resume is
    /// merely convergence-preserving: frozen columns re-freeze on their
    /// first resumed step instead of being restored.
    pub block: Option<BlockState>,
}

/// Freeze code of one block column inside a [`BlockState`].
///
/// Stored as a `u8` on disk; the numeric values are part of the format.
pub mod block_state_code {
    /// Still iterating.
    pub const LIVE: u8 = 0;
    /// Residual reached tolerance.
    pub const CONVERGED: u8 = 1;
    /// Non-finite λ or residual (guardrail).
    pub const NON_FINITE: u8 = 2;
    /// Iterate collapsed to zero (guardrail).
    pub const COLLAPSE: u8 = 3;
    /// Iteration budget spent without convergence.
    pub const BUDGET: u8 = 4;
    /// Wall-clock deadline expired before convergence.
    pub const TIMED_OUT: u8 = 5;

    /// Largest valid code (decode bound).
    pub const MAX: u8 = TIMED_OUT;
}

/// Per-column freeze record persisted with a block snapshot, indexed by
/// *original* column.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockColumnState {
    /// Freeze code (see [`block_state_code`]).
    pub state: u8,
    /// Unshifted λ measured at freeze (0.0 while live).
    pub lambda: f64,
    /// Residual measured at freeze (`f64::INFINITY` while live).
    pub residual: f64,
    /// Block iteration the column froze at (0 while live).
    pub iteration: u64,
}

/// Compacted-slab bookkeeping persisted with a `"block_power"` snapshot:
/// everything a resume needs to skip already-frozen columns instead of
/// re-running and re-measuring them.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockState {
    /// Live prefix width of the compacted slab: slots `0..width` ride
    /// through the batched apply, slots `width..k` are parked frozen
    /// columns.
    pub width: u64,
    /// Slot → original column index map (a permutation of `0..k`,
    /// matching the slab stored in [`Snapshot::iterate`]).
    pub owner: Vec<u64>,
    /// Per-column freeze records, indexed by original column.
    pub columns: Vec<BlockColumnState>,
}

impl BlockState {
    /// Internal-consistency check shared by decode and resume: the owner
    /// map must be a permutation of `0..k` over `columns.len()` slots,
    /// the live width must fit, and every state code must be known.
    /// Returns a human-readable defect description on failure.
    pub fn validate(&self) -> Result<(), String> {
        let k = self.columns.len();
        if self.owner.len() != k {
            return Err(format!(
                "owner map has {} slots for {k} columns",
                self.owner.len()
            ));
        }
        if self.width as usize > k {
            return Err(format!("live width {} exceeds {k} columns", self.width));
        }
        let mut seen = vec![false; k];
        for &col in &self.owner {
            let Some(slot) = seen.get_mut(col as usize) else {
                return Err(format!("owner map names column {col} of {k}"));
            };
            if std::mem::replace(slot, true) {
                return Err(format!("owner map repeats column {col}"));
            }
        }
        if let Some(bad) = self
            .columns
            .iter()
            .find(|c| c.state > block_state_code::MAX)
        {
            return Err(format!("unknown column state code {}", bad.state));
        }
        Ok(())
    }
}

impl Snapshot {
    /// Encode to the versioned binary format: magic, version, payload
    /// (all integers little-endian, floats by exact bit pattern),
    /// trailing FNV-1a checksum over everything before it.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::MethodTooLong`] when the method label exceeds
    /// [`MAX_METHOD_LEN`] — the only way a snapshot's own fields can
    /// make its frame unrepresentable.
    pub fn encode(&self) -> Result<Vec<u8>, CheckpointError> {
        if self.method.len() > MAX_METHOD_LEN {
            return Err(CheckpointError::MethodTooLong {
                len: self.method.len(),
            });
        }
        let mut out = Vec::with_capacity(
            64 + self.method.len() + 8 * (self.residual_history.len() + self.iterate.len()),
        );
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.problem.to_le_bytes());
        out.extend_from_slice(&self.iteration.to_le_bytes());
        out.extend_from_slice(&self.matvecs.to_le_bytes());
        out.extend_from_slice(&self.rung.to_le_bytes());
        out.extend_from_slice(&(self.method.len() as u32).to_le_bytes());
        out.extend_from_slice(self.method.as_bytes());
        out.extend_from_slice(&self.shift.to_bits().to_le_bytes());
        out.extend_from_slice(&self.tol.to_bits().to_le_bytes());
        out.extend_from_slice(&self.stall_best.to_bits().to_le_bytes());
        out.extend_from_slice(&self.stall_count.to_le_bytes());
        out.extend_from_slice(&(self.residual_history.len() as u64).to_le_bytes());
        for &v in &self.residual_history {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        out.extend_from_slice(&(self.iterate.len() as u64).to_le_bytes());
        for &v in &self.iterate {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        // Format version 2: optional block freeze bookkeeping.
        match &self.block {
            None => out.push(0u8),
            Some(block) => {
                out.push(1u8);
                out.extend_from_slice(&block.width.to_le_bytes());
                out.extend_from_slice(&(block.owner.len() as u64).to_le_bytes());
                for &slot in &block.owner {
                    out.extend_from_slice(&slot.to_le_bytes());
                }
                out.extend_from_slice(&(block.columns.len() as u64).to_le_bytes());
                for col in &block.columns {
                    out.push(col.state);
                    out.extend_from_slice(&col.lambda.to_bits().to_le_bytes());
                    out.extend_from_slice(&col.residual.to_bits().to_le_bytes());
                    out.extend_from_slice(&col.iteration.to_le_bytes());
                }
            }
        }
        let mut h = Fnv64::new();
        h.write(&out);
        out.extend_from_slice(&h.finish().to_le_bytes());
        Ok(out)
    }

    /// Decode and validate a snapshot image. Every malformation —
    /// truncation at any byte, wrong magic, unknown version, checksum
    /// mismatch, inconsistent framing — is a typed [`CheckpointError`];
    /// this function never panics on arbitrary input.
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, CheckpointError> {
        // Fixed frame: magic(8) + version(4) + checksum(8).
        if bytes.len() < MAGIC.len() + 4 + 8 {
            return Err(CheckpointError::TooShort { len: bytes.len() });
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
            return Err(CheckpointError::UnsupportedVersion { found: version });
        }
        let (payload, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
        let mut h = Fnv64::new();
        h.write(payload);
        if h.finish() != stored {
            return Err(CheckpointError::ChecksumMismatch);
        }

        let mut r = Reader {
            bytes: &payload[12..],
        };
        let problem = r.u64()?;
        let iteration = r.u64()?;
        let matvecs = r.u64()?;
        let rung = r.u32()?;
        let method_len = r.u32()? as usize;
        let method = std::str::from_utf8(r.take(method_len, "method label")?)
            .map_err(|_| CheckpointError::Malformed {
                detail: "method label is not UTF-8".into(),
            })?
            .to_string();
        let shift = r.f64()?;
        let tol = r.f64()?;
        let stall_best = r.f64()?;
        let stall_count = r.u64()?;
        let residual_history = r.f64_vec("residual history")?;
        let iterate = r.f64_vec("iterate")?;
        // Version 1 images end here; their block state decodes as absent
        // (resume stays convergence-preserving, exactly as that version
        // behaved when written).
        let block = if version >= 2 {
            match r.u8("block flag")? {
                0 => None,
                1 => {
                    let width = r.u64()?;
                    let owner = r.u64_vec("owner map")?;
                    let col_count = r.u64()? as usize;
                    // 25 bytes per column record; bound before allocating.
                    if r.bytes.len() < col_count.saturating_mul(25) {
                        return Err(CheckpointError::Malformed {
                            detail: format!(
                                "block state claims {col_count} columns but only {} bytes remain",
                                r.bytes.len()
                            ),
                        });
                    }
                    let mut columns = Vec::with_capacity(col_count);
                    for _ in 0..col_count {
                        columns.push(BlockColumnState {
                            state: r.u8("column state")?,
                            lambda: r.f64()?,
                            residual: r.f64()?,
                            iteration: r.u64()?,
                        });
                    }
                    let block = BlockState {
                        width,
                        owner,
                        columns,
                    };
                    block
                        .validate()
                        .map_err(|detail| CheckpointError::Malformed { detail })?;
                    Some(block)
                }
                other => {
                    return Err(CheckpointError::Malformed {
                        detail: format!("unknown block flag {other}"),
                    })
                }
            }
        } else {
            None
        };
        if !r.bytes.is_empty() {
            return Err(CheckpointError::Malformed {
                detail: format!("{} trailing bytes after the payload", r.bytes.len()),
            });
        }
        Ok(Snapshot {
            problem,
            iteration,
            matvecs,
            rung,
            method,
            shift,
            tol,
            stall_best,
            stall_count,
            residual_history,
            iterate,
            block,
        })
    }
}

/// Bounds-checked little-endian field reader over a payload slice.
struct Reader<'a> {
    bytes: &'a [u8],
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], CheckpointError> {
        if self.bytes.len() < n {
            return Err(CheckpointError::Malformed {
                detail: format!(
                    "{what} truncated ({} of {n} bytes present)",
                    self.bytes.len()
                ),
            });
        }
        let (head, rest) = self.bytes.split_at(n);
        self.bytes = rest;
        Ok(head)
    }

    fn u8(&mut self, what: &str) -> Result<u8, CheckpointError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(
            self.take(4, "u32 field")?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(
            self.take(8, "u64 field")?.try_into().expect("8 bytes"),
        ))
    }

    fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn f64_vec(&mut self, what: &str) -> Result<Vec<f64>, CheckpointError> {
        let len = self.u64()? as usize;
        // The length field must be consistent with the bytes actually
        // present *before* any allocation, so a malicious length cannot
        // trigger a huge reservation.
        if self.bytes.len() < len.saturating_mul(8) {
            return Err(CheckpointError::Malformed {
                detail: format!(
                    "{what} claims {len} values but only {} bytes remain",
                    self.bytes.len()
                ),
            });
        }
        let raw = self.take(len * 8, what)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8 bytes"))))
            .collect())
    }

    fn u64_vec(&mut self, what: &str) -> Result<Vec<u64>, CheckpointError> {
        let len = self.u64()? as usize;
        if self.bytes.len() < len.saturating_mul(8) {
            return Err(CheckpointError::Malformed {
                detail: format!(
                    "{what} claims {len} values but only {} bytes remain",
                    self.bytes.len()
                ),
            });
        }
        let raw = self.take(len * 8, what)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect())
    }
}

/// Where and how often snapshots are written.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointConfig {
    /// Directory holding the double-buffered slots (created on demand).
    pub dir: PathBuf,
    /// Write a snapshot every this many outer iterations (0 disables
    /// the iteration cadence).
    pub every_iterations: u64,
    /// Also write when this much wall time elapsed since the last write
    /// (`None` disables the wall-clock cadence).
    pub every_wall: Option<Duration>,
    /// Fault injection: on the k-th snapshot write (1-based), write only
    /// a truncated prefix directly over the target slot — simulating a
    /// torn write — and abort the process. Exercises the loader's
    /// torn-write rejection; never set outside the fault harness.
    pub torn_write_at: Option<u64>,
}

impl CheckpointConfig {
    /// Cadence defaults (snapshot every 256 iterations, no wall-clock
    /// cadence, no fault injection) for the given directory.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CheckpointConfig {
            dir: dir.into(),
            every_iterations: 256,
            every_wall: None,
            torn_write_at: None,
        }
    }
}

/// Atomic double-buffered snapshot writer.
///
/// Protocol per write: encode → write to `ckpt.tmp` → `sync_all` →
/// rename over the slot *not* holding the newest good snapshot. Rename
/// is atomic on POSIX filesystems, so every crash point leaves at least
/// one intact snapshot: before the rename the old slots are untouched;
/// after it the new snapshot is complete (the fsync ordered the data
/// before the rename).
#[derive(Debug)]
pub struct Checkpointer {
    cfg: CheckpointConfig,
    /// Slot index the *next* write targets.
    next_slot: usize,
    /// Completed writes this session (drives `torn_write_at`).
    writes: u64,
    /// Anchor for the wall-clock cadence: session start until the first
    /// write, then the instant of the latest write. The first wall
    /// interval therefore measures from the moment the solve began —
    /// never an immediate write at iteration 1, never a timer that
    /// cannot fire.
    wall_anchor: Instant,
}

impl Checkpointer {
    /// Open a checkpoint directory for writing (creating it if needed).
    /// The first write targets the older (or absent/corrupt) slot so an
    /// existing good snapshot is never the first thing overwritten.
    pub fn create(cfg: CheckpointConfig) -> Result<Self, CheckpointError> {
        fs::create_dir_all(&cfg.dir).map_err(|e| CheckpointError::Io {
            path: cfg.dir.clone(),
            detail: e.to_string(),
        })?;
        // Rank each slot by the iteration of the valid snapshot it
        // holds; invalid or missing slots rank lowest and are reused
        // first.
        let rank = |slot: &str| -> Option<u64> {
            let bytes = fs::read(cfg.dir.join(slot)).ok()?;
            Snapshot::decode(&bytes).ok().map(|s| s.iteration)
        };
        let (a, b) = (rank(SLOTS[0]), rank(SLOTS[1]));
        let next_slot = if a <= b { 0 } else { 1 };
        Ok(Checkpointer {
            cfg,
            next_slot,
            writes: 0,
            wall_anchor: Instant::now(),
        })
    }

    /// The configured cadence settings.
    pub fn config(&self) -> &CheckpointConfig {
        &self.cfg
    }

    /// Should a snapshot be written at the end of `iteration`? True on
    /// the iteration cadence, or when the wall-clock cadence elapsed.
    /// `Instant::now()` is consulted only when a wall cadence is set, so
    /// the default configuration stays syscall-free per iteration.
    pub fn due(&self, iteration: u64) -> bool {
        if self.cfg.every_iterations > 0 && iteration % self.cfg.every_iterations == 0 {
            return true;
        }
        match self.cfg.every_wall {
            Some(wall) => self.wall_anchor.elapsed() >= wall,
            None => false,
        }
    }

    /// Atomically persist one snapshot; returns the encoded size in
    /// bytes. A failed write leaves the previous good snapshot intact.
    pub fn write(&mut self, snapshot: &Snapshot) -> Result<u64, CheckpointError> {
        let encoded = snapshot.encode()?;
        let slot_path = self.cfg.dir.join(SLOTS[self.next_slot]);
        if self.cfg.torn_write_at == Some(self.writes + 1) {
            // Crash injection: tear this write in the worst possible way
            // — a partial image at the final path, no tmp+rename
            // protection — then die. The loader must reject the torn
            // slot and fall back to the other one.
            let torn = &encoded[..encoded.len() / 2];
            let _ = fs::write(&slot_path, torn);
            std::process::abort();
        }
        let tmp_path = self.cfg.dir.join(TMP_NAME);
        let io_err = |path: &Path, e: std::io::Error| CheckpointError::Io {
            path: path.to_path_buf(),
            detail: e.to_string(),
        };
        let mut tmp = fs::File::create(&tmp_path).map_err(|e| io_err(&tmp_path, e))?;
        tmp.write_all(&encoded).map_err(|e| io_err(&tmp_path, e))?;
        tmp.sync_all().map_err(|e| io_err(&tmp_path, e))?;
        drop(tmp);
        fs::rename(&tmp_path, &slot_path).map_err(|e| io_err(&slot_path, e))?;
        self.next_slot ^= 1;
        self.writes += 1;
        self.wall_anchor = Instant::now();
        Ok(encoded.len() as u64)
    }
}

/// Load the newest valid snapshot for `problem` from a checkpoint
/// directory.
///
/// Slot semantics:
/// * no slot file exists → `Ok(None)` (nothing to resume);
/// * at least one slot decodes and matches `problem` → the one with the
///   highest iteration wins (a torn sibling slot is tolerated — that is
///   the point of double-buffering);
/// * slots decode but none matches `problem` → `ProblemMismatch`;
/// * slot files exist but none decodes → the decode error of the
///   best-preserved slot (e.g. `ChecksumMismatch` for a torn write).
pub fn load_latest(dir: &Path, problem: u64) -> Result<Option<Snapshot>, CheckpointError> {
    let mut best: Option<Snapshot> = None;
    let mut mismatch: Option<CheckpointError> = None;
    let mut decode_err: Option<CheckpointError> = None;
    let mut any_file = false;
    for slot in SLOTS {
        let path = dir.join(slot);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
            Err(e) => {
                return Err(CheckpointError::Io {
                    path,
                    detail: e.to_string(),
                })
            }
        };
        any_file = true;
        match Snapshot::decode(&bytes) {
            Ok(snap) if snap.problem == problem => {
                if best.as_ref().is_none_or(|b| snap.iteration > b.iteration) {
                    best = Some(snap);
                }
            }
            Ok(snap) => {
                mismatch = Some(CheckpointError::ProblemMismatch {
                    expected: problem,
                    found: snap.problem,
                });
            }
            Err(e) => {
                if decode_err.is_none() {
                    decode_err = Some(e);
                }
            }
        }
    }
    match (best, mismatch, decode_err, any_file) {
        (Some(snap), _, _, _) => Ok(Some(snap)),
        (None, Some(e), _, _) => Err(e),
        (None, None, Some(e), _) => Err(e),
        (None, None, None, _) => Ok(None),
    }
}

/// Mutable checkpoint state threaded through one durable solve: owns
/// the writer, the problem hash, the residual-history accumulator and
/// the pending resume snapshot, and tracks which method/ladder-rung the
/// solve is currently running so snapshots describe it truthfully.
#[derive(Debug)]
pub struct CheckpointSession {
    writer: Checkpointer,
    problem: u64,
    shift: f64,
    tol: f64,
    /// Recovery-ladder rung (0 = first attempt). Snapshots written at
    /// rung > 0 are tagged so resume can refuse them.
    rung: u32,
    method: &'static str,
    /// Residual history accumulated this solve, capped by
    /// `history_cap` (0 = unlimited) via uniform downsampling.
    history: Vec<f64>,
    history_cap: usize,
    resume: Option<Snapshot>,
}

impl CheckpointSession {
    /// Build a session around an opened writer. `resume` carries the
    /// already-validated snapshot the solve should continue from (its
    /// residual history seeds the session's accumulator).
    pub fn new(
        writer: Checkpointer,
        problem: u64,
        shift: f64,
        tol: f64,
        history_cap: usize,
        resume: Option<Snapshot>,
    ) -> Self {
        let history = resume
            .as_ref()
            .map(|s| s.residual_history.clone())
            .unwrap_or_default();
        CheckpointSession {
            writer,
            problem,
            shift,
            tol,
            rung: 0,
            method: "power",
            history,
            history_cap,
            resume,
        }
    }

    /// Consume the pending resume snapshot. Only the ladder's first
    /// attempt (rung 0) consumes it; once the ladder moves past rung 0
    /// the snapshot no longer describes the running attempt.
    pub fn take_resume(&mut self) -> Option<Snapshot> {
        if self.rung == 0 {
            self.resume.take()
        } else {
            None
        }
    }

    /// Record the method label snapshots should carry from now on.
    pub fn set_method(&mut self, method: &'static str) {
        self.method = method;
    }

    /// Record the recovery-ladder rung the solve moved to.
    pub fn set_rung(&mut self, rung: u32) {
        self.rung = rung;
    }

    /// The current recovery-ladder rung.
    pub fn rung(&self) -> u32 {
        self.rung
    }

    /// Append one residual measurement, downsampling uniformly once the
    /// accumulator doubles past the cap (so per-iteration cost stays
    /// amortised O(1) and snapshots stay small).
    pub fn push_residual(&mut self, residual: f64) {
        self.history.push(residual);
        if self.history_cap > 0 && self.history.len() > 2 * self.history_cap {
            crate::result::downsample_uniform(&mut self.history, self.history_cap);
        }
    }

    /// The accumulated residual history (resume seed + this run).
    pub fn history(&self) -> &[f64] {
        &self.history
    }

    /// Is a snapshot due at the end of `iteration`?
    pub fn due(&self, iteration: u64) -> bool {
        self.writer.due(iteration)
    }

    /// Write a snapshot of the current state; returns encoded bytes on
    /// success. Callers emit the corresponding telemetry event (written
    /// or rejected) — a failed checkpoint write must never kill a
    /// healthy solve.
    pub fn write_snapshot(
        &mut self,
        iteration: u64,
        matvecs: u64,
        stall: (f64, usize),
        iterate: &[f64],
    ) -> Result<u64, CheckpointError> {
        let snapshot = Snapshot {
            problem: self.problem,
            iteration,
            matvecs,
            rung: self.rung,
            method: self.method.to_string(),
            shift: self.shift,
            tol: self.tol,
            stall_best: stall.0,
            stall_count: stall.1 as u64,
            residual_history: self.history.clone(),
            iterate: iterate.to_vec(),
            block: None,
        };
        self.writer.write(&snapshot)
    }

    /// [`CheckpointSession::write_snapshot`] carrying block freeze
    /// bookkeeping: `iterate` is the whole column slab in slot order and
    /// `block` records the live width, the slot→column owner map and the
    /// per-column freeze records, so a resumed block solve restores its
    /// frozen columns instead of re-running them.
    pub fn write_block_snapshot(
        &mut self,
        iteration: u64,
        matvecs: u64,
        iterate: &[f64],
        block: BlockState,
    ) -> Result<u64, CheckpointError> {
        let snapshot = Snapshot {
            problem: self.problem,
            iteration,
            matvecs,
            rung: self.rung,
            method: self.method.to_string(),
            shift: self.shift,
            tol: self.tol,
            stall_best: f64::INFINITY,
            stall_count: 0,
            residual_history: self.history.clone(),
            iterate: iterate.to_vec(),
            block: Some(block),
        };
        self.writer.write(&snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            problem: 0x1234_5678_9abc_def0,
            iteration: 512,
            matvecs: 515,
            rung: 0,
            method: "power".to_string(),
            shift: 0.25,
            tol: 1e-13,
            stall_best: 3.5e-9,
            stall_count: 17,
            residual_history: vec![1.0, 0.5, 0.25, 3.5e-9],
            iterate: vec![0.5, -0.5, 0.5, 0.5],
            block: None,
        }
    }

    fn sample_block() -> Snapshot {
        Snapshot {
            method: "block_power".to_string(),
            iterate: vec![0.5; 12], // 3 columns of n = 4, slot order
            block: Some(BlockState {
                width: 1,
                owner: vec![2, 0, 1],
                columns: vec![
                    BlockColumnState {
                        state: block_state_code::CONVERGED,
                        lambda: 1.875,
                        residual: 4.0e-14,
                        iteration: 17,
                    },
                    BlockColumnState {
                        state: block_state_code::COLLAPSE,
                        lambda: 0.25,
                        residual: 0.125,
                        iteration: 9,
                    },
                    BlockColumnState {
                        state: block_state_code::LIVE,
                        lambda: 0.0,
                        residual: f64::INFINITY,
                        iteration: 0,
                    },
                ],
            }),
            ..sample()
        }
    }

    /// Re-encode a snapshot in the version-1 layout (no block section)
    /// to exercise the back-compat decode path against a byte-faithful
    /// old image.
    fn encode_v1(snap: &Snapshot) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&1u32.to_le_bytes());
        out.extend_from_slice(&snap.problem.to_le_bytes());
        out.extend_from_slice(&snap.iteration.to_le_bytes());
        out.extend_from_slice(&snap.matvecs.to_le_bytes());
        out.extend_from_slice(&snap.rung.to_le_bytes());
        out.extend_from_slice(&(snap.method.len() as u32).to_le_bytes());
        out.extend_from_slice(snap.method.as_bytes());
        out.extend_from_slice(&snap.shift.to_bits().to_le_bytes());
        out.extend_from_slice(&snap.tol.to_bits().to_le_bytes());
        out.extend_from_slice(&snap.stall_best.to_bits().to_le_bytes());
        out.extend_from_slice(&snap.stall_count.to_le_bytes());
        out.extend_from_slice(&(snap.residual_history.len() as u64).to_le_bytes());
        for &v in &snap.residual_history {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        out.extend_from_slice(&(snap.iterate.len() as u64).to_le_bytes());
        for &v in &snap.iterate {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        let mut h = Fnv64::new();
        h.write(&out);
        out.extend_from_slice(&h.finish().to_le_bytes());
        out
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qs-checkpoint-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn oversized_method_label_is_a_typed_encode_error() {
        let mut snap = sample();
        snap.method = "m".repeat(MAX_METHOD_LEN + 1);
        match snap.encode() {
            Err(CheckpointError::MethodTooLong { len }) => {
                assert_eq!(len, MAX_METHOD_LEN + 1);
            }
            other => panic!("expected MethodTooLong, got {other:?}"),
        }
        // Exactly at the cap still frames and round-trips.
        snap.method = "m".repeat(MAX_METHOD_LEN);
        let decoded = Snapshot::decode(&snap.encode().unwrap()).unwrap();
        assert_eq!(decoded.method.len(), MAX_METHOD_LEN);
    }

    #[test]
    fn wall_cadence_first_interval_measures_from_session_start() {
        // A generous interval: nothing may be due at the first check —
        // the old behaviour wrote a useless iteration-1 snapshot the
        // moment the solve started.
        let cfg = CheckpointConfig {
            every_iterations: 0,
            every_wall: Some(Duration::from_secs(3600)),
            ..CheckpointConfig::new(tmp_dir("wall-fresh"))
        };
        let ckpt = Checkpointer::create(cfg).unwrap();
        assert!(
            !ckpt.due(1),
            "first wall interval must measure from solve start, not fire immediately"
        );
        let _ = fs::remove_dir_all(&ckpt.cfg.dir);
    }

    #[test]
    fn wall_cadence_fires_once_the_interval_elapses() {
        // A zero interval has always elapsed — the timer must be armed
        // (a never-firing first write would make every_wall dead config).
        let cfg = CheckpointConfig {
            every_iterations: 0,
            every_wall: Some(Duration::ZERO),
            ..CheckpointConfig::new(tmp_dir("wall-due"))
        };
        let mut ckpt = Checkpointer::create(cfg).unwrap();
        assert!(ckpt.due(1), "an elapsed wall interval must be due");
        // Writing re-anchors the timer: a long interval is not due again
        // right after a write.
        ckpt.cfg.every_wall = Some(Duration::from_secs(3600));
        ckpt.write(&sample()).unwrap();
        assert!(!ckpt.due(2), "a write must re-anchor the wall timer");
        let _ = fs::remove_dir_all(&ckpt.cfg.dir);
    }

    #[test]
    fn snapshot_round_trips_bit_exactly() {
        let snap = sample();
        let decoded = Snapshot::decode(&snap.encode().unwrap()).unwrap();
        assert_eq!(decoded, snap);
        // Bit-exactness beyond PartialEq: negative zero and the stall
        // sentinel survive.
        let mut odd = sample();
        odd.iterate = vec![-0.0, f64::MIN_POSITIVE];
        odd.stall_best = f64::INFINITY;
        let decoded = Snapshot::decode(&odd.encode().unwrap()).unwrap();
        assert_eq!(decoded.iterate[0].to_bits(), (-0.0f64).to_bits());
        assert_eq!(decoded.stall_best, f64::INFINITY);
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        for encoded in [sample().encode().unwrap(), sample_block().encode().unwrap()] {
            for len in 0..encoded.len() {
                let result = Snapshot::decode(&encoded[..len]);
                assert!(result.is_err(), "truncation to {len} bytes must fail");
            }
        }
    }

    #[test]
    fn block_snapshot_round_trips_bit_exactly() {
        let snap = sample_block();
        let decoded = Snapshot::decode(&snap.encode().unwrap()).unwrap();
        assert_eq!(decoded, snap);
        let block = decoded.block.unwrap();
        assert_eq!(block.width, 1);
        assert_eq!(block.owner, vec![2, 0, 1]);
        assert_eq!(block.columns[2].residual, f64::INFINITY);
    }

    #[test]
    fn version1_images_decode_with_block_state_absent() {
        // A byte-faithful v1 image must still load: same fields, block
        // bookkeeping absent (the old convergence-preserving resume).
        let snap = sample();
        let v1 = encode_v1(&snap);
        let decoded = Snapshot::decode(&v1).unwrap();
        assert_eq!(decoded, snap);
        assert_eq!(decoded.block, None);
    }

    #[test]
    fn inconsistent_block_state_is_malformed() {
        let corrupt = |mutate: fn(&mut BlockState)| {
            let mut snap = sample_block();
            mutate(snap.block.as_mut().unwrap());
            Snapshot::decode(&snap.encode().unwrap())
        };
        // Owner map repeating a column.
        assert!(matches!(
            corrupt(|b| b.owner[0] = 0),
            Err(CheckpointError::Malformed { .. })
        ));
        // Owner map naming a column out of range.
        assert!(matches!(
            corrupt(|b| b.owner[1] = 9),
            Err(CheckpointError::Malformed { .. })
        ));
        // Live width wider than the column count.
        assert!(matches!(
            corrupt(|b| b.width = 4),
            Err(CheckpointError::Malformed { .. })
        ));
        // Unknown freeze code.
        assert!(matches!(
            corrupt(|b| b.columns[0].state = 99),
            Err(CheckpointError::Malformed { .. })
        ));
        // Owner/columns length mismatch.
        assert!(matches!(
            corrupt(|b| b.owner = vec![0, 1]),
            Err(CheckpointError::Malformed { .. })
        ));
    }

    #[test]
    fn corruptions_map_to_the_right_variants() {
        let encoded = sample().encode().unwrap();
        assert_eq!(
            Snapshot::decode(&encoded[..10]),
            Err(CheckpointError::TooShort { len: 10 })
        );
        let mut bad_magic = encoded.clone();
        bad_magic[0] ^= 0xff;
        assert_eq!(Snapshot::decode(&bad_magic), Err(CheckpointError::BadMagic));
        let mut bad_version = encoded.clone();
        bad_version[8] = 99;
        assert_eq!(
            Snapshot::decode(&bad_version),
            Err(CheckpointError::UnsupportedVersion { found: 99 })
        );
        // Any payload bit-flip is caught by the checksum.
        let mut flipped = encoded.clone();
        flipped[40] ^= 0x01;
        assert_eq!(
            Snapshot::decode(&flipped),
            Err(CheckpointError::ChecksumMismatch)
        );
        // Trailing garbage (with a recomputed checksum) is malformed.
        let mut padded = encoded[..encoded.len() - 8].to_vec();
        padded.extend_from_slice(&[0u8; 4]);
        let mut h = Fnv64::new();
        h.write(&padded);
        let sum = h.finish();
        padded.extend_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            Snapshot::decode(&padded),
            Err(CheckpointError::Malformed { .. })
        ));
    }

    #[test]
    fn huge_length_field_is_rejected_without_allocating() {
        // Corrupt the iterate length field to u64::MAX and recompute the
        // checksum: the decoder must refuse before reserving memory.
        let snap = Snapshot {
            residual_history: vec![],
            iterate: vec![],
            ..sample()
        };
        let encoded = snap.encode().unwrap();
        let mut bytes = encoded[..encoded.len() - 8].to_vec();
        // The payload ends with iterate-length(8) + block-flag(1).
        let iterate_len_at = bytes.len() - 9;
        bytes[iterate_len_at..iterate_len_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let mut h = Fnv64::new();
        h.write(&bytes);
        let sum = h.finish();
        bytes.extend_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            Snapshot::decode(&bytes),
            Err(CheckpointError::Malformed { .. })
        ));
    }

    #[test]
    fn double_buffer_alternates_and_survives_one_torn_slot() {
        let dir = tmp_dir("double-buffer");
        let mut writer = Checkpointer::create(CheckpointConfig::new(&dir)).unwrap();
        let mut snap = sample();
        snap.iteration = 100;
        writer.write(&snap).unwrap();
        snap.iteration = 200;
        writer.write(&snap).unwrap();
        // Newest wins.
        let loaded = load_latest(&dir, snap.problem).unwrap().unwrap();
        assert_eq!(loaded.iteration, 200);
        // Tear the newer slot: the loader falls back to the older one.
        let newer = [0, 1]
            .map(|i| dir.join(SLOTS[i]))
            .into_iter()
            .find(|p| {
                fs::read(p)
                    .ok()
                    .and_then(|b| Snapshot::decode(&b).ok())
                    .is_some_and(|s| s.iteration == 200)
            })
            .unwrap();
        let bytes = fs::read(&newer).unwrap();
        fs::write(&newer, &bytes[..bytes.len() / 2]).unwrap();
        let loaded = load_latest(&dir, snap.problem).unwrap().unwrap();
        assert_eq!(loaded.iteration, 100);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn only_corrupt_slots_is_an_error_and_empty_dir_is_none() {
        let dir = tmp_dir("corrupt-only");
        fs::create_dir_all(&dir).unwrap();
        assert_eq!(load_latest(&dir, 7), Ok(None));
        fs::write(dir.join(SLOTS[0]), b"not a snapshot at all").unwrap();
        assert!(load_latest(&dir, 7).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_problem_is_a_typed_mismatch() {
        let dir = tmp_dir("mismatch");
        let mut writer = Checkpointer::create(CheckpointConfig::new(&dir)).unwrap();
        writer.write(&sample()).unwrap();
        let err = load_latest(&dir, 42).unwrap_err();
        assert!(matches!(err, CheckpointError::ProblemMismatch { .. }));
        assert_eq!(err.label(), "problem_mismatch");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_reuses_the_invalid_slot_first() {
        let dir = tmp_dir("slot-pick");
        let mut writer = Checkpointer::create(CheckpointConfig::new(&dir)).unwrap();
        let mut snap = sample();
        snap.iteration = 300;
        writer.write(&snap).unwrap();
        // Reopen: the next write must land on the *other* (empty) slot,
        // keeping the good snapshot until a newer one exists.
        let mut reopened = Checkpointer::create(CheckpointConfig::new(&dir)).unwrap();
        snap.iteration = 400;
        reopened.write(&snap).unwrap();
        let a = fs::read(dir.join(SLOTS[0]))
            .ok()
            .map(|b| Snapshot::decode(&b));
        let b = fs::read(dir.join(SLOTS[1]))
            .ok()
            .map(|b| Snapshot::decode(&b));
        let iters: Vec<u64> = [a, b]
            .into_iter()
            .flatten()
            .filter_map(|r| r.ok().map(|s| s.iteration))
            .collect();
        assert!(iters.contains(&300) && iters.contains(&400), "{iters:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn iteration_cadence_and_session_history_cap() {
        let dir = tmp_dir("session");
        let mut cfg = CheckpointConfig::new(&dir);
        cfg.every_iterations = 10;
        let writer = Checkpointer::create(cfg).unwrap();
        let mut session = CheckpointSession::new(writer, 7, 0.0, 1e-13, 4, None);
        assert!(!session.due(9));
        assert!(session.due(10));
        for i in 0..32 {
            session.push_residual(1.0 / (i + 1) as f64);
        }
        assert!(session.history().len() <= 8, "{}", session.history().len());
        // The most recent measurement always survives downsampling.
        assert_eq!(*session.history().last().unwrap(), 1.0 / 32.0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_recovery_sessions_do_not_offer_the_resume_snapshot() {
        let dir = tmp_dir("rung");
        let writer = Checkpointer::create(CheckpointConfig::new(&dir)).unwrap();
        let mut session = CheckpointSession::new(writer, 7, 0.0, 1e-13, 0, Some(sample()));
        session.set_rung(1);
        assert!(session.take_resume().is_none());
        session.set_rung(0);
        assert!(session.take_resume().is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fnv_is_stable() {
        // Pin the FNV-1a constants against accidental drift: the empty
        // hash is the offset basis and "a" has a known value.
        assert_eq!(Fnv64::new().finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv64::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }
}
