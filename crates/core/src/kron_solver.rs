//! The factorised solver for Kronecker-product fitness landscapes
//! (paper Section 5.2).
//!
//! If `F = ⊗_t F_{G_t}` (diagonal factors) splits compatibly with
//! `Q = ⊗_t Q_{G_t}`, the mixed product formula gives
//! `W = ⊗_t (Q_{G_t}·F_{G_t})`: the eigenproblem **decouples** into `g`
//! independent subproblems of size `2^{g_t}` whose dominant eigenpairs
//! multiply/tensor into the full solution. "The usual multiplicative
//! connection becomes an additive one": chain length `ν = 100` with `g = 4`
//! reduces to four tractable `2^{25}` problems.
//!
//! Each factor subproblem is *itself* a quasispecies problem, so it is
//! solved with the full fast machinery (`Pi(Fmmp)` etc. via
//! [`crate::solver::solve`]). The resulting [`KroneckerQuasispecies`] keeps
//! the eigenvector **implicit** (`Σ 2^{g_t}` stored values instead of
//! `2^ν`) and supports the queries the paper proposes extracting from the
//! implicit description:
//!
//! * concentration of any individual sequence,
//! * exact cumulative error-class concentrations `[Γ_k]` (dynamic
//!   programming over factor weight profiles),
//! * per-class min/max concentrations — "sufficient information for
//!   investigating … whether the error threshold phenomenon occurs".

use crate::result::{Quasispecies, SolveStats};
use crate::solver::{solve, SolveError, SolverConfig};
use qs_landscape::{Kronecker, Landscape, Tabulated};

/// The implicitly represented quasispecies of a Kronecker landscape.
#[derive(Debug, Clone)]
pub struct KroneckerQuasispecies {
    /// Dominant eigenvalue of the full `W` (= product of factor
    /// eigenvalues).
    pub lambda: f64,
    /// Per-factor dominant eigenvalues.
    pub factor_lambdas: Vec<f64>,
    /// Per-factor stationary distributions, each L1-normalised (so the
    /// tensor product is L1-normalised too).
    pub factor_vectors: Vec<Vec<f64>>,
    /// Per-factor bit counts `g_t`.
    bits: Vec<u32>,
    /// Total chain length `ν = Σ g_t`.
    nu: u32,
}

impl KroneckerQuasispecies {
    /// Chain length `ν`.
    pub fn nu(&self) -> u32 {
        self.nu
    }

    /// Number of stored values `Σ 2^{g_t}` (vs `2^ν` explicit).
    pub fn stored_values(&self) -> usize {
        self.factor_vectors.iter().map(Vec::len).sum()
    }

    /// Concentration of sequence `i` — `O(g)` per query, no
    /// materialisation.
    ///
    /// # Panics
    ///
    /// Panics for `ν > 63`, where sequence indices no longer fit `u64`;
    /// use [`KroneckerQuasispecies::concentration_digits`] there.
    pub fn concentration(&self, i: u64) -> f64 {
        assert!(self.nu <= 63, "indices only address chains of ν ≤ 63");
        let mut shift = self.nu;
        let mut c = 1.0;
        for (x, &g) in self.factor_vectors.iter().zip(&self.bits) {
            shift -= g;
            c *= x[((i >> shift) & ((1 << g) - 1)) as usize];
        }
        c
    }

    /// Concentration of the sequence given by its per-factor digits (most
    /// significant group first) — works at any chain length.
    ///
    /// # Panics
    ///
    /// Panics if `digits.len()` differs from the number of factors or a
    /// digit is out of range for its factor.
    pub fn concentration_digits(&self, digits: &[usize]) -> f64 {
        assert_eq!(
            digits.len(),
            self.factor_vectors.len(),
            "one digit per factor required"
        );
        self.factor_vectors
            .iter()
            .zip(digits)
            .map(|(x, &d)| x[d])
            .product()
    }

    /// Exact cumulative error-class concentrations `[Γ_k]`, `k = 0..=ν`,
    /// by convolving the per-factor weight profiles
    /// `s_t[w] = Σ_{w(d)=w} x_t[d]` — `O(ν²)` total, valid for chain
    /// lengths far beyond materialisation.
    pub fn class_concentrations(&self) -> Vec<f64> {
        let mut acc = vec![1.0f64];
        for (x, &g) in self.factor_vectors.iter().zip(&self.bits) {
            let mut profile = vec![0.0f64; g as usize + 1];
            for (d, &xd) in x.iter().enumerate() {
                profile[(d as u64).count_ones() as usize] += xd;
            }
            let mut next = vec![0.0f64; acc.len() + g as usize];
            for (k, &a) in acc.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                for (w, &s) in profile.iter().enumerate() {
                    next[k + w] += a * s;
                }
            }
            acc = next;
        }
        acc
    }

    /// Per-class (min, max) individual concentrations: the paper's proposed
    /// cheap probe for the error-threshold phenomenon. Dynamic programming
    /// over factors with per-weight extrema; `O(ν²)` total.
    pub fn class_min_max(&self) -> Vec<(f64, f64)> {
        let mut lo = vec![1.0f64];
        let mut hi = vec![1.0f64];
        for (x, &g) in self.factor_vectors.iter().zip(&self.bits) {
            let m = g as usize + 1;
            let mut wmin = vec![f64::INFINITY; m];
            let mut wmax = vec![f64::NEG_INFINITY; m];
            for (d, &xd) in x.iter().enumerate() {
                let w = (d as u64).count_ones() as usize;
                wmin[w] = wmin[w].min(xd);
                wmax[w] = wmax[w].max(xd);
            }
            let mut nlo = vec![f64::INFINITY; lo.len() + g as usize];
            let mut nhi = vec![f64::NEG_INFINITY; hi.len() + g as usize];
            for k in 0..lo.len() {
                for w in 0..m {
                    // All values positive: products preserve ordering.
                    nlo[k + w] = nlo[k + w].min(lo[k] * wmin[w]);
                    nhi[k + w] = nhi[k + w].max(hi[k] * wmax[w]);
                }
            }
            lo = nlo;
            hi = nhi;
        }
        lo.into_iter().zip(hi).collect()
    }

    /// Materialise the full eigenvector (small ν only).
    ///
    /// # Panics
    ///
    /// Panics if `2^ν` exceeds the supported dimension.
    pub fn materialize(&self) -> Vec<f64> {
        let n = qs_bitseq::dimension(self.nu);
        (0..n as u64).map(|i| self.concentration(i)).collect()
    }

    /// Expand into a full [`Quasispecies`] (small ν only).
    pub fn expand(&self) -> Quasispecies {
        Quasispecies::from_right_eigenvector(
            self.lambda,
            self.materialize(),
            SolveStats {
                iterations: 0,
                matvecs: 0,
                residual: 0.0,
                converged: true,
                engine: "kronecker(5.2)".into(),
                method: "factorised".into(),
                shift: 0.0,
                degraded: false,
                recovered_from: None,
                deadline_expired: false,
                residual_history: None,
                warm_start: None,
            },
        )
    }
}

/// Solve the quasispecies problem for a [`Kronecker`] landscape under the
/// uniform mutation model with error rate `p`, by solving each factor
/// subproblem independently with the configured solver.
///
/// The uniform `Q(ν) = ⊗ Q(g_t)` splits compatibly with *any* binary
/// Kronecker landscape partition, so no compatibility condition beyond the
/// landscape's own structure is needed.
///
/// # Errors
///
/// Propagates [`SolveError`] from any factor solve.
pub fn solve_kronecker(
    p: f64,
    landscape: &Kronecker,
    config: &SolverConfig,
) -> Result<KroneckerQuasispecies, SolveError> {
    let bits = landscape.factor_bits().to_vec();
    let mut factor_lambdas = Vec::with_capacity(bits.len());
    let mut factor_vectors = Vec::with_capacity(bits.len());
    for t in 0..landscape.num_factors() {
        // Each factor is a quasispecies problem of chain length g_t.
        let sub = Tabulated::new(landscape.factor(t).to_vec());
        let qs = solve(p, &sub, config)?;
        factor_lambdas.push(qs.lambda);
        factor_vectors.push(qs.concentrations);
    }
    let lambda = factor_lambdas.iter().product();
    Ok(KroneckerQuasispecies {
        lambda,
        factor_lambdas,
        factor_vectors,
        nu: landscape.nu(),
        bits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolverConfig;
    use qs_landscape::Landscape;

    fn test_landscape() -> Kronecker {
        Kronecker::new(vec![
            vec![2.0, 1.0, 1.2, 0.9], // 2 bits
            vec![1.5, 1.0],           // 1 bit
            vec![1.1, 0.8, 1.3, 0.7], // 2 bits
        ])
    }

    #[test]
    fn matches_monolithic_solver() {
        let p = 0.02;
        let landscape = test_landscape(); // ν = 5
        let kron = solve_kronecker(p, &landscape, &SolverConfig::default()).unwrap();
        let full = solve(
            p,
            &landscape,
            &SolverConfig {
                tol: 1e-14,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            (kron.lambda - full.lambda).abs() < 1e-10,
            "λ: {} vs {}",
            kron.lambda,
            full.lambda
        );
        for i in 0..landscape.len() as u64 {
            assert!(
                (kron.concentration(i) - full.concentration(i)).abs() < 1e-9,
                "sequence {i}"
            );
        }
    }

    #[test]
    fn class_concentrations_match_materialised() {
        let p = 0.04;
        let landscape = test_landscape();
        let kron = solve_kronecker(p, &landscape, &SolverConfig::default()).unwrap();
        let via_dp = kron.class_concentrations();
        let via_full = qs_bitseq::accumulate_classes(&kron.materialize());
        assert_eq!(via_dp.len(), via_full.len());
        for (k, (&a, &b)) in via_dp.iter().zip(&via_full).enumerate() {
            assert!((a - b).abs() < 1e-12, "[Γ_{k}]: {a} vs {b}");
        }
        let total: f64 = via_dp.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn min_max_match_brute_force() {
        let p = 0.03;
        let landscape = test_landscape();
        let kron = solve_kronecker(p, &landscape, &SolverConfig::default()).unwrap();
        let mm = kron.class_min_max();
        let x = kron.materialize();
        let nu = landscape.nu();
        for k in 0..=nu {
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for j in qs_bitseq::ErrorClassIter::new(nu, k) {
                lo = lo.min(x[j as usize]);
                hi = hi.max(x[j as usize]);
            }
            assert!((mm[k as usize].0 - lo).abs() < 1e-14, "min of Γ_{k}");
            assert!((mm[k as usize].1 - hi).abs() < 1e-14, "max of Γ_{k}");
        }
    }

    #[test]
    fn expansion_is_an_eigenvector() {
        let p = 0.05;
        let landscape = test_landscape();
        let kron = solve_kronecker(p, &landscape, &SolverConfig::default()).unwrap();
        let qs = kron.expand();
        let w = qs_matvec::WOperator::from_landscape(
            qs_matvec::Fmmp::new(landscape.nu(), p),
            &landscape,
            qs_matvec::Formulation::Right,
        );
        let wx = qs_matvec::LinearOperator::apply(&w, &qs.concentrations);
        for (a, b) in wx.iter().zip(&qs.concentrations) {
            assert!((a - kron.lambda * b).abs() < 1e-10);
        }
    }

    #[test]
    fn long_chain_nu_100_is_tractable() {
        // The paper's marquee example: ν = 100 via factorisation. Use ten
        // 10-bit factors (within reach of the test budget; the structure is
        // identical to the paper's 4×2^25 scenario).
        let factor: Vec<f64> = (0..1024u64)
            .map(|d| {
                if d == 0 {
                    2.0
                } else {
                    1.0 + (d % 7) as f64 / 100.0
                }
            })
            .collect();
        let landscape = Kronecker::uniform(10, factor);
        assert_eq!(landscape.nu(), 100);
        let kron = solve_kronecker(0.001, &landscape, &SolverConfig::default()).unwrap();
        assert_eq!(kron.stored_values(), 10 * 1024);
        let gamma = kron.class_concentrations();
        assert_eq!(gamma.len(), 101);
        let total: f64 = gamma.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "Σ[Γ_k] = {total}");
        // Individual queries work without materialisation (indices exceed
        // u64 at ν = 100, so query by per-factor digits).
        let c0 = kron.concentration_digits(&[0; 10]);
        assert!(c0 > 0.0);
        let mm = kron.class_min_max();
        assert!(mm[0].0 <= c0 && c0 <= mm[0].1 + 1e-18);
        assert!(kron.lambda > 1.0);
    }

    #[test]
    fn factor_lambda_product() {
        let landscape = test_landscape();
        let kron = solve_kronecker(0.01, &landscape, &SolverConfig::default()).unwrap();
        let prod: f64 = kron.factor_lambdas.iter().product();
        assert!((kron.lambda - prod).abs() < 1e-14);
        assert_eq!(kron.factor_lambdas.len(), 3);
    }

    #[test]
    fn single_factor_reduces_to_plain_solve() {
        let landscape = Kronecker::new(vec![vec![2.0, 1.0, 1.5, 0.8]]);
        let kron = solve_kronecker(0.02, &landscape, &SolverConfig::default()).unwrap();
        let plain = solve(0.02, &landscape, &SolverConfig::default()).unwrap();
        assert!((kron.lambda - plain.lambda).abs() < 1e-11);
    }
}
