//! Error-threshold analysis (paper Figure 1).
//!
//! For landscapes exhibiting the error-threshold phenomenon, the stationary
//! distribution is *ordered* (some sequences dominate) up to a critical
//! error rate `p_max`, then collapses suddenly into the uniform
//! distribution — random replication. Typical `p_max` values on the
//! studied landscapes are 0.01–0.1 (paper Section 1.1), far below the
//! `p = 1/2` at which exact random replication occurs; the sharpness of
//! the transition is what makes mutagenic antiviral strategies plausible.
//!
//! [`scan_error_classes`] sweeps `p` and records the cumulative class
//! concentrations `[Γ_k]` — the curves of Figure 1 — through the exact
//! Section 5.1 reduction (`O(ν³)` per point, any ν). [`detect_pmax`]
//! locates the threshold by bisecting an order parameter.

use crate::reduced::solve_error_class;
use crate::request::solve_uniform_sweep;
use crate::solver::{solve, SolveError, SolverConfig};
use crate::workspace::Workspace;
use qs_landscape::Landscape;

/// Result of an error-rate sweep: one `[Γ_k]` profile per grid point.
#[derive(Debug, Clone)]
pub struct ThresholdScan {
    /// Chain length.
    pub nu: u32,
    /// Error-rate grid.
    pub ps: Vec<f64>,
    /// `classes[i][k] = [Γ_k]` at `ps[i]`.
    pub classes: Vec<Vec<f64>>,
    /// Order parameter at each grid point (see [`order_parameter`]).
    pub order: Vec<f64>,
}

impl ThresholdScan {
    /// The curve of `[Γ_k]` over the grid for a fixed class `k` (one line
    /// of Figure 1).
    ///
    /// # Panics
    ///
    /// Panics if `k > ν`.
    pub fn class_curve(&self, k: u32) -> Vec<f64> {
        assert!(k <= self.nu, "class index exceeds chain length");
        self.classes.iter().map(|c| c[k as usize]).collect()
    }
}

/// Order parameter distinguishing an ordered distribution from the uniform
/// one: the total variation distance between the class profile and the
/// binomial profile the uniform distribution induces,
/// `½·Σ_k |[Γ_k] − C(ν,k)/N|`, which is 0 exactly at uniformity.
pub fn order_parameter(nu: u32, classes: &[f64]) -> f64 {
    assert_eq!(classes.len(), nu as usize + 1, "profile length mismatch");
    let n = 2f64.powi(nu as i32);
    let mut acc = qs_linalg::NeumaierSum::new();
    for (k, &c) in classes.iter().enumerate() {
        acc.add((c - qs_bitseq::binomial_f64(nu, k as u32) / n).abs());
    }
    0.5 * acc.value()
}

/// Sweep the error rate over `ps` for an error-class landscape with class
/// profile `phi`, producing the data behind paper Figure 1.
///
/// # Panics
///
/// Panics on an invalid profile or on `p` values outside `(0, 1/2]`.
pub fn scan_error_classes(nu: u32, phi: &[f64], ps: &[f64]) -> ThresholdScan {
    let mut classes = Vec::with_capacity(ps.len());
    let mut order = Vec::with_capacity(ps.len());
    for &p in ps {
        let sol = solve_error_class(nu, p, phi);
        order.push(order_parameter(nu, &sol.classes));
        classes.push(sol.classes);
    }
    ThresholdScan {
        nu,
        ps: ps.to_vec(),
        classes,
        order,
    }
}

/// Sweep the error rate for an **arbitrary** landscape through the full
/// solver — the paper's headline capability ("figures … would be even more
/// interesting at the level of granularity of single sequences but they
/// are very rare in the literature due to the limitations in chain lengths
/// which can be handled computationally"). Each grid point is one
/// `Pi(Fmmp)` solve; the recorded curves are the cumulative class
/// concentrations of the *exact* full-resolution distribution.
///
/// # Errors
///
/// Propagates the first [`SolveError`] encountered.
pub fn scan_full<L: Landscape + ?Sized>(
    landscape: &L,
    ps: &[f64],
    config: &SolverConfig,
) -> Result<ThresholdScan, SolveError> {
    let nu = landscape.nu();
    let mut classes = Vec::with_capacity(ps.len());
    let mut order = Vec::with_capacity(ps.len());
    for &p in ps {
        let qs = solve(p, landscape, config)?;
        let profile = qs.error_class_concentrations();
        order.push(order_parameter(nu, &profile));
        classes.push(profile);
    }
    Ok(ThresholdScan {
        nu,
        ps: ps.to_vec(),
        classes,
        order,
    })
}

/// Batched variant of [`scan_full`] for the **uniform** mutation model:
/// instead of one independent solve per grid point, every error rate
/// advances in lockstep through a single block power iteration whose step
/// cost is one [`QSweep`](qs_matvec::QSweep) application — the FWHT stage sweeps (the
/// dominant cost at large ν) are paid once per step for the *entire* grid
/// rather than once per `p`.
///
/// Semantically equivalent to [`scan_full`] with the default power
/// method, no shift and the same tolerance; agreement is at solver
/// tolerance, not bit-for-bit (the spectral `Q`-product is a different —
/// equally exact — factorisation than Fmmp's butterflies).
///
/// # Errors
///
/// [`SolveError::InvalidConfig`] on an empty grid, rates outside
/// `(0, 1/2]` or non-positive fitness values;
/// [`SolveError::NotConverged`] if any column exhausts `max_iter`.
pub fn scan_full_sweep<L: Landscape + ?Sized>(
    landscape: &L,
    ps: &[f64],
    tol: f64,
    max_iter: usize,
) -> Result<ThresholdScan, SolveError> {
    let nu = landscape.nu();
    let (solutions, _) =
        solve_uniform_sweep(landscape, ps, tol, max_iter, true, &mut Workspace::new())?;
    let mut classes = Vec::with_capacity(ps.len());
    let mut order = Vec::with_capacity(ps.len());
    for qs in solutions {
        let profile = qs.error_class_concentrations();
        order.push(order_parameter(nu, &profile));
        classes.push(profile);
    }
    Ok(ThresholdScan {
        nu,
        ps: ps.to_vec(),
        classes,
        order,
    })
}

/// Locate the error threshold `p_max` for an error-class landscape by
/// bisection on the order parameter: the largest `p` in `(lo, hi)` whose
/// stationary distribution is still ordered (order parameter above
/// `ordered_eps`).
///
/// Returns `None` if the distribution is already disordered at `lo` or
/// still ordered at `hi` (no threshold in the bracket — e.g. the linear
/// landscape, which transitions smoothly and whose order parameter decays
/// without a sharp knee, will report a crossing of `ordered_eps` too, so
/// interpret the result together with the scan's shape).
///
/// # Panics
///
/// Panics unless `0 < lo < hi ≤ 1/2`.
pub fn detect_pmax(
    nu: u32,
    phi: &[f64],
    lo: f64,
    hi: f64,
    ordered_eps: f64,
    iterations: u32,
) -> Option<f64> {
    assert!(0.0 < lo && lo < hi && hi <= 0.5, "invalid bracket");
    let order_at = |p: f64| order_parameter(nu, &solve_error_class(nu, p, phi).classes);
    if order_at(lo) <= ordered_eps || order_at(hi) > ordered_eps {
        return None;
    }
    let (mut a, mut b) = (lo, hi);
    for _ in 0..iterations {
        let mid = 0.5 * (a + b);
        if order_at(mid) > ordered_eps {
            a = mid;
        } else {
            b = mid;
        }
    }
    Some(0.5 * (a + b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qs_landscape::ErrorClass;

    fn single_peak_phi(nu: u32) -> Vec<f64> {
        ErrorClass::single_peak(nu, 2.0, 1.0).phi().to_vec()
    }

    #[test]
    fn scan_shapes() {
        let nu = 20u32;
        let ps: Vec<f64> = (1..=8).map(|i| i as f64 * 0.01).collect();
        let scan = scan_error_classes(nu, &single_peak_phi(nu), &ps);
        assert_eq!(scan.ps.len(), 8);
        assert_eq!(scan.classes.len(), 8);
        assert_eq!(scan.classes[0].len(), 21);
        // Every profile is a distribution.
        for c in &scan.classes {
            let total: f64 = c.iter().sum();
            assert!((total - 1.0).abs() < 1e-10);
        }
        // Master class concentration decays with p.
        let gamma0 = scan.class_curve(0);
        for w in gamma0.windows(2) {
            assert!(w[1] < w[0] + 1e-12);
        }
    }

    #[test]
    fn single_peak_threshold_location() {
        // Paper Figure 1 (left): ν = 20, f₀ = 2 ⇒ p_max ≈ 0.035.
        let nu = 20u32;
        let pmax = detect_pmax(nu, &single_peak_phi(nu), 0.005, 0.1, 1e-3, 40)
            .expect("threshold must exist for the single-peak landscape");
        assert!(
            (0.025..=0.045).contains(&pmax),
            "p_max = {pmax} outside the paper's ≈0.035 band"
        );
    }

    #[test]
    fn order_parameter_extremes() {
        let nu = 10u32;
        // Ordered: all mass in Γ₀.
        let mut delta = vec![0.0; 11];
        delta[0] = 1.0;
        assert!(order_parameter(nu, &delta) > 0.9);
        // Uniform: exactly the binomial profile.
        let n = 2f64.powi(nu as i32);
        let uniform: Vec<f64> = (0..=nu)
            .map(|k| qs_bitseq::binomial_f64(nu, k) / n)
            .collect();
        assert!(order_parameter(nu, &uniform) < 1e-14);
    }

    #[test]
    fn beyond_threshold_distribution_is_uniform() {
        // Past p_max the stationary distribution collapses to uniform:
        // [Γ_k] → C(ν,k)/N.
        let nu = 20u32;
        let sol = solve_error_class(nu, 0.08, &single_peak_phi(nu));
        assert!(order_parameter(nu, &sol.classes) < 1e-2);
        // Symmetric classes meet, as Figure 1 shows (Γ_k and Γ_{ν−k} same
        // cardinality ⇒ same cumulative concentration at uniformity). The
        // residual fitness advantage of the master keeps a small ordered
        // remnant at p = 0.08, so "meet" means within a modest factor for
        // the (singleton) extreme classes and tightly for the bulk.
        for k in 0..=nu / 2 {
            let a = sol.classes[k as usize];
            let b = sol.classes[(nu - k) as usize];
            let ratio = a.max(b) / a.min(b).max(1e-300);
            assert!(ratio < 1.5, "Γ_{k} vs Γ_{}: ratio {ratio}", nu - k);
        }
    }

    #[test]
    fn linear_landscape_has_no_sharp_threshold() {
        // Figure 1 (right): the linear landscape decays smoothly. Check
        // the order parameter has no knee: its decrements change gradually
        // (max second difference small relative to the total drop).
        let nu = 20u32;
        let phi = ErrorClass::linear(nu, 2.0, 1.0).phi().to_vec();
        let ps: Vec<f64> = (1..=40).map(|i| i as f64 * 0.0025).collect();
        let scan = scan_error_classes(nu, &phi, &ps);
        let o = &scan.order;
        let total_drop = o[0] - o[o.len() - 1];
        assert!(total_drop > 0.0);
        let max_step = o.windows(2).map(|w| w[0] - w[1]).fold(0.0f64, f64::max);
        // Smooth decay: no single step carries more than a third of the
        // drop. (The single-peak landscape concentrates it near p_max.)
        assert!(
            max_step < 0.34 * total_drop,
            "max_step {max_step} vs drop {total_drop}"
        );
    }

    #[test]
    fn single_peak_transition_is_sharp_by_comparison() {
        let nu = 20u32;
        let ps: Vec<f64> = (1..=40).map(|i| i as f64 * 0.0025).collect();
        let scan = scan_error_classes(nu, &single_peak_phi(nu), &ps);
        let o = &scan.order;
        let total_drop = o[0] - o[o.len() - 1];
        let max_step = o.windows(2).map(|w| w[0] - w[1]).fold(0.0f64, f64::max);
        // A large fraction of the order parameter vanishes within one grid
        // step around p_max — the "sudden change" of Section 1.1.
        assert!(
            max_step > 0.15 * total_drop,
            "single peak transition unexpectedly smooth: {max_step} vs {total_drop}"
        );
    }

    #[test]
    fn full_scan_matches_reduced_scan_on_class_landscapes() {
        let nu = 8u32;
        let phi = single_peak_phi(nu);
        let ps = [0.005f64, 0.02, 0.05];
        let reduced = scan_error_classes(nu, &phi, &ps);
        let landscape = ErrorClass::new(nu, phi);
        let full = scan_full(&landscape, &ps, &crate::solver::SolverConfig::default()).unwrap();
        for (a, b) in reduced.classes.iter().zip(&full.classes) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-9);
            }
        }
        for (a, b) in reduced.order.iter().zip(&full.order) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn full_scan_works_on_rugged_landscapes() {
        // NK landscapes have no error-class structure at all; only the
        // full solver can scan them. Order must still decay with p.
        let landscape = qs_landscape::Nk::new(8, 3, 9);
        let ps = [0.002f64, 0.05, 0.2, 0.45];
        let scan = scan_full(&landscape, &ps, &crate::solver::SolverConfig::default()).unwrap();
        for c in &scan.classes {
            let s: f64 = c.iter().sum();
            assert!((s - 1.0).abs() < 1e-10);
        }
        assert!(
            scan.order.last().unwrap() < &scan.order[0],
            "order parameter must decay toward p = 1/2"
        );
        assert!(scan.order.last().unwrap() < &0.05);
    }

    #[test]
    fn sweep_scan_matches_per_point_scan() {
        // The batched QSweep scan and the one-solve-per-point scan are two
        // routes to the same stationary distributions.
        let nu = 8u32;
        let phi = single_peak_phi(nu);
        let landscape = ErrorClass::new(nu, phi);
        let ps = [0.005f64, 0.02, 0.05, 0.5];
        let sweep = scan_full_sweep(&landscape, &ps, 1e-12, 200_000).unwrap();
        let per_point = scan_full(
            &landscape,
            &ps,
            &crate::solver::SolverConfig {
                shift: crate::solver::ShiftStrategy::None,
                tol: 1e-12,
                ..Default::default()
            },
        )
        .unwrap();
        for (a, b) in sweep.classes.iter().zip(&per_point.classes) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-8, "{x} vs {y}");
            }
        }
        for (a, b) in sweep.order.iter().zip(&per_point.order) {
            assert!((a - b).abs() < 1e-8);
        }
        // The p = 1/2 endpoint collapses to the uniform distribution.
        assert!(sweep.order.last().unwrap() < &1e-8);
    }

    #[test]
    fn sweep_scan_rejects_bad_grid() {
        let nu = 6u32;
        let landscape = ErrorClass::new(nu, single_peak_phi(nu));
        assert!(matches!(
            scan_full_sweep(&landscape, &[], 1e-12, 1000),
            Err(SolveError::InvalidConfig {
                parameter: "ps",
                ..
            })
        ));
        assert!(matches!(
            scan_full_sweep(&landscape, &[0.01, 0.7], 1e-12, 1000),
            Err(SolveError::InvalidConfig { parameter: "p", .. })
        ));
        assert!(matches!(
            scan_full_sweep(&landscape, &[0.01], 1e-12, 2),
            Err(SolveError::NotConverged { .. })
        ));
    }

    #[test]
    fn no_threshold_reported_outside_bracket() {
        let nu = 12u32;
        let phi = single_peak_phi(nu);
        // Entire bracket beyond the threshold: ordered at lo fails.
        assert_eq!(detect_pmax(nu, &phi, 0.2, 0.4, 1e-3, 20), None);
    }
}
