//! Criterion micro-benchmarks behind paper Figure 2: one implicit product
//! `Q·v` per engine across chain lengths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qs_matvec::{fmmp::fmmp_in_place, LinearOperator, Smvp, Xmvp};
use qs_mutation::Uniform;
use std::hint::black_box;
use std::time::Duration;

fn random_vec(n: usize) -> Vec<f64> {
    // Deterministic LCG; no RNG dependency needed in the bench loop.
    let mut state = 0x243F6A8885A308D3u64;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        })
        .collect()
}

fn bench_matvec(c: &mut Criterion) {
    let p = 0.01;
    let mut group = c.benchmark_group("fig2_matvec");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));

    for nu in [10u32, 12, 14, 16] {
        let n = 1usize << nu;
        let x = random_vec(n);

        group.bench_with_input(BenchmarkId::new("fmmp", nu), &nu, |b, _| {
            let mut v = x.clone();
            b.iter(|| {
                fmmp_in_place(black_box(&mut v), p);
            });
        });

        group.bench_with_input(BenchmarkId::new("xmvp_1", nu), &nu, |b, _| {
            let op = Xmvp::new(nu, p, 1);
            let mut y = vec![0.0; n];
            b.iter(|| op.apply_into(black_box(&x), &mut y));
        });

        if nu <= 12 {
            group.bench_with_input(BenchmarkId::new("xmvp_full", nu), &nu, |b, _| {
                let op = Xmvp::exact(nu, p);
                let mut y = vec![0.0; n];
                b.iter(|| op.apply_into(black_box(&x), &mut y));
            });
        }
        if nu <= 12 {
            group.bench_with_input(BenchmarkId::new("smvp", nu), &nu, |b, _| {
                let op = Smvp::from_model(&Uniform::new(nu, p));
                let mut y = vec![0.0; n];
                b.iter(|| op.apply_into(black_box(&x), &mut y));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_matvec);
criterion_main!(benches);
