//! Criterion benchmarks for the transform kernels: FWHT, Fmmp, and the
//! FWHT-based shift-and-invert product (paper Section 3) — all
//! `Θ(N log₂ N)` butterflies with different constants.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qs_matvec::{fmmp::fmmp_in_place, fwht::fwht_in_place, LinearOperator, QShiftInvert};
use std::hint::black_box;
use std::time::Duration;

fn bench_transforms(c: &mut Criterion) {
    let mut group = c.benchmark_group("transforms");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));

    for nu in [14u32, 16, 18] {
        let n = 1usize << nu;
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();

        group.bench_with_input(BenchmarkId::new("fwht", nu), &nu, |b, _| {
            let mut v = x.clone();
            b.iter(|| fwht_in_place(black_box(&mut v)));
        });

        group.bench_with_input(BenchmarkId::new("fmmp", nu), &nu, |b, _| {
            let mut v = x.clone();
            b.iter(|| fmmp_in_place(black_box(&mut v), 0.01));
        });

        group.bench_with_input(BenchmarkId::new("q_shift_invert", nu), &nu, |b, _| {
            let op = QShiftInvert::new(nu, 0.01, -0.5);
            let mut v = x.clone();
            b.iter(|| op.apply_in_place(black_box(&mut v)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_transforms);
criterion_main!(benches);
