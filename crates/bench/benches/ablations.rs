//! Ablation benchmarks for the design choices the paper calls out:
//!
//! * the Eq. 9 vs Eq. 10 stage ordering and Algorithm 2's kernel form,
//! * the spectral shift `µ = (1−2p)^ν·f_min` (Section 3),
//! * the exact Section 5.1 reduction vs the full-size solve,
//! * the Section 5.2 Kronecker decomposition vs the monolithic solve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qs_landscape::{ErrorClass, Kronecker, Random};
use qs_matvec::{Fmmp, FmmpVariant, LinearOperator};
use quasispecies::{
    solve, solve_error_class, solve_kronecker, Method, ShiftStrategy, SolverConfig,
};
use std::hint::black_box;
use std::time::Duration;

fn bench_fmmp_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("fmmp_variants");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let nu = 16u32;
    let n = 1usize << nu;
    let x: Vec<f64> = (0..n).map(|i| ((i * 37) % 101) as f64).collect();
    for variant in [
        FmmpVariant::Iterative,
        FmmpVariant::Eq10,
        FmmpVariant::Recursive,
        FmmpVariant::Kernel,
    ] {
        group.bench_with_input(
            BenchmarkId::new("variant", format!("{variant:?}")),
            &variant,
            |b, &v| {
                let op = Fmmp::with_variant(nu, 0.01, v);
                let mut buf = x.clone();
                b.iter(|| op.apply_in_place(black_box(&mut buf)));
            },
        );
    }
    group.finish();
}

fn bench_shift(c: &mut Criterion) {
    let mut group = c.benchmark_group("shift_ablation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let nu = 12u32;
    let landscape = Random::new(nu, 5.0, 1.0, 7);
    for (label, strategy) in [
        ("conservative", ShiftStrategy::Conservative),
        ("none", ShiftStrategy::None),
    ] {
        group.bench_function(BenchmarkId::new("pi_fmmp", label), |b| {
            let cfg = SolverConfig {
                shift: strategy,
                ..Default::default()
            };
            b.iter(|| black_box(solve(0.01, &landscape, &cfg).unwrap()));
        });
    }
    group.finish();
}

fn bench_reduction_51(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduction_5_1");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let nu = 14u32;
    let ec = ErrorClass::single_peak(nu, 2.0, 1.0);
    group.bench_function("full_pi_fmmp", |b| {
        let cfg = SolverConfig::default();
        b.iter(|| black_box(solve(0.02, &ec, &cfg).unwrap()));
    });
    group.bench_function("reduced_nu_plus_1", |b| {
        let phi = ec.phi().to_vec();
        b.iter(|| black_box(solve_error_class(nu, 0.02, &phi)));
    });
    group.finish();
}

fn bench_kronecker_52(c: &mut Criterion) {
    let mut group = c.benchmark_group("kronecker_5_2");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    // ν = 16 as 4 factors of 4 bits.
    let factor: Vec<f64> = (0..16u64)
        .map(|d| {
            if d == 0 {
                1.6
            } else {
                1.0 + (d % 5) as f64 / 10.0
            }
        })
        .collect();
    let landscape = Kronecker::uniform(4, factor);
    group.bench_function("monolithic_pi_fmmp", |b| {
        let cfg = SolverConfig::default();
        b.iter(|| black_box(solve(0.01, &landscape, &cfg).unwrap()));
    });
    group.bench_function("factorised", |b| {
        let cfg = SolverConfig::default();
        b.iter(|| black_box(solve_kronecker(0.01, &landscape, &cfg).unwrap()));
    });
    group.finish();
}

fn bench_eigensolvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("eigensolver_ablation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let nu = 11u32;
    let landscape = Random::new(nu, 5.0, 1.0, 5);
    let methods: [(&str, Method); 3] = [
        ("power", Method::Power),
        ("lanczos", Method::Lanczos { subspace: 60 }),
        ("rqi", Method::Rqi { warmup: 10 }),
    ];
    for (label, method) in methods {
        group.bench_function(BenchmarkId::new("pi_fmmp", label), |b| {
            let cfg = SolverConfig {
                method,
                tol: 1e-11,
                ..Default::default()
            };
            b.iter(|| black_box(solve(0.01, &landscape, &cfg).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fmmp_variants,
    bench_shift,
    bench_reduction_51,
    bench_kronecker_52,
    bench_eigensolvers
);
criterion_main!(benches);
