//! Serial vs parallel backend scaling — the fidelity check for the GPU
//! substitution (paper Section 4: Algorithm 2's kernel exposes `N/2`
//! independent butterflies per stage; the speedup should track the
//! hardware's parallelism/bandwidth).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qs_matvec::{
    fmmp::fmmp_in_place,
    parallel::{par_dot, par_fmmp_in_place, par_norm_l2},
};
use std::hint::black_box;
use std::time::Duration;

fn bench_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("backend_scaling");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));

    for nu in [16u32, 18, 20] {
        let n = 1usize << nu;
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 1e-6).sin()).collect();
        group.throughput(Throughput::Elements(n as u64));

        group.bench_with_input(BenchmarkId::new("fmmp_serial", nu), &nu, |b, _| {
            let mut v = x.clone();
            b.iter(|| fmmp_in_place(black_box(&mut v), 0.01));
        });
        group.bench_with_input(BenchmarkId::new("fmmp_parallel", nu), &nu, |b, _| {
            let mut v = x.clone();
            b.iter(|| par_fmmp_in_place(black_box(&mut v), 0.01));
        });
        group.bench_with_input(BenchmarkId::new("reduction_serial", nu), &nu, |b, _| {
            b.iter(|| black_box(qs_linalg::dot(&x, &x) + qs_linalg::norm_l2(&x)));
        });
        group.bench_with_input(BenchmarkId::new("reduction_parallel", nu), &nu, |b, _| {
            b.iter(|| black_box(par_dot(&x, &x) + par_norm_l2(&x)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
