//! Criterion micro-benchmarks behind paper Figure 3: full power-iteration
//! solves on the random landscape (Eq. 13, c = 5, σ = 1, p = 0.01).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qs_landscape::Random;
use quasispecies::{solve, Engine, Method, SolverConfig};
use std::hint::black_box;
use std::time::Duration;

fn bench_solver(c: &mut Criterion) {
    let p = 0.01;
    let mut group = c.benchmark_group("fig3_solver");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    for nu in [10u32, 12] {
        let landscape = Random::new(nu, 5.0, 1.0, 1000 + nu as u64);

        group.bench_with_input(BenchmarkId::new("pi_fmmp", nu), &nu, |b, _| {
            let cfg = SolverConfig::default();
            b.iter(|| black_box(solve(p, &landscape, &cfg).unwrap()));
        });

        group.bench_with_input(BenchmarkId::new("pi_fmmp_parallel", nu), &nu, |b, _| {
            let cfg = SolverConfig {
                engine: Engine::FmmpParallel,
                ..Default::default()
            };
            b.iter(|| black_box(solve(p, &landscape, &cfg).unwrap()));
        });

        group.bench_with_input(BenchmarkId::new("pi_xmvp5", nu), &nu, |b, _| {
            let cfg = SolverConfig {
                engine: Engine::Xmvp { d_max: 5 },
                tol: 1e-10,
                ..Default::default()
            };
            b.iter(|| black_box(solve(p, &landscape, &cfg).unwrap()));
        });

        if nu <= 10 {
            group.bench_with_input(BenchmarkId::new("pi_xmvp_full", nu), &nu, |b, _| {
                let cfg = SolverConfig {
                    engine: Engine::Xmvp { d_max: nu },
                    ..Default::default()
                };
                b.iter(|| black_box(solve(p, &landscape, &cfg).unwrap()));
            });
        }

        group.bench_with_input(BenchmarkId::new("lanczos_fmmp", nu), &nu, |b, _| {
            let cfg = SolverConfig {
                method: Method::Lanczos { subspace: 60 },
                ..Default::default()
            };
            b.iter(|| black_box(solve(p, &landscape, &cfg).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
