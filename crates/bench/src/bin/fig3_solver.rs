//! Reproduce **paper Figure 3**: overall execution time for finding the
//! dominant eigenvector of `Q·F` (`p = 0.01`) on the random landscape of
//! paper Eq. 13 with `c = 5, σ = 1`, for increasing chain length ν:
//!
//! * `Pi(Xmvp(ν))` — exact quadratic baseline, τ = 10⁻¹⁵,
//! * `Pi(Xmvp(5))` — the approximative scheme of \[10\], τ = 10⁻¹⁰,
//! * `Pi(Fmmp)`    — the paper's solver, τ = 10⁻¹⁵ (here: residual-limited
//!   tolerance 10⁻¹³·f_max, since τ = 10⁻¹⁵ is below f64 attainability on
//!   some landscapes),
//!
//! all on the parallel backend (the paper ran these on a Tesla C2050; our
//! "GPU" is the work-stealing thread pool, see DESIGN.md §3). Quadratic
//! points beyond the budget are extrapolated, as the paper does for ν ≥ 22.
//!
//! Usage: `fig3_solver [--max-nu NU] [--quick]`

use qs_bench::{dump_json, dump_trace_jsonl, model_n2, print_table, time_median, Series};
use qs_landscape::Random;
use qs_telemetry::RecordingProbe;
use quasispecies::{solve, solve_probed, Engine, ShiftStrategy, SolverConfig};
use serde::Serialize;

/// Residual trajectory of one traced `Pi(Fmmp)` solve.
#[derive(Serialize)]
struct Trajectory {
    nu: u32,
    iterations: usize,
    residuals: Vec<f64>,
}

#[derive(Serialize)]
struct Fig3Output {
    series: Vec<Series>,
    iterations: Vec<(u32, usize, usize)>, // (nu, shifted iters, plain iters)
    trajectories: Vec<Trajectory>,
}

fn main() {
    let (max_nu, quick) = qs_bench::harness_args(20);
    let p = 0.01;
    let xmvp_full_cap: u32 = if quick { 10 } else { 12 };
    let xmvp5_cap: u32 = max_nu.min(if quick { 13 } else { 16 });
    let reps = if quick { 1 } else { 3 };

    println!(
        "Figure 3 reproduction: full Pi solves on random landscape (c=5, σ=1), p = {p}, ν = 10..={max_nu}"
    );
    println!(
        "backend: thread pool with {} workers (GPU substitute)",
        rayon::current_num_threads()
    );

    let mut s_full = Series::new("Pi(Xmvp(ν)) τ=1e-15");
    let mut s_x5 = Series::new("Pi(Xmvp(5)) τ=1e-10");
    let mut s_fmmp = Series::new("Pi(Fmmp)");
    let mut iterations = Vec::new();
    let mut trajectories = Vec::new();
    let mut last_trace: Option<(u32, RecordingProbe)> = None;

    for nu in 10..=max_nu {
        let landscape = Random::new(nu, 5.0, 1.0, 1000 + nu as u64);
        // Attainable residual scales with ‖W‖ ≈ f_max = 5; 1e-13 plays the
        // paper's τ = 1e-15 role within f64 limits.
        let tol_exact = 1e-13;

        if nu <= xmvp_full_cap {
            let cfg = SolverConfig {
                engine: Engine::Xmvp { d_max: nu },
                tol: tol_exact,
                ..Default::default()
            };
            let t = time_median(|| drop(solve(p, &landscape, &cfg).unwrap()), 0, reps);
            s_full.push_measured(nu, t);
        }
        if nu <= xmvp5_cap {
            let cfg = SolverConfig {
                engine: Engine::Xmvp { d_max: 5 },
                tol: 1e-10,
                ..Default::default()
            };
            let t = time_median(|| drop(solve(p, &landscape, &cfg).unwrap()), 0, reps);
            s_x5.push_measured(nu, t);
        }
        {
            let cfg = SolverConfig {
                engine: Engine::FmmpParallel,
                tol: tol_exact,
                ..Default::default()
            };
            let t = time_median(|| drop(solve(p, &landscape, &cfg).unwrap()), 0, reps);
            s_fmmp.push_measured(nu, t);

            // Traced convergence trajectory (outside the timed region).
            let mut rec = RecordingProbe::new();
            let traced = solve_probed(p, &landscape, &cfg, &mut rec).unwrap();
            trajectories.push(Trajectory {
                nu,
                iterations: traced.stats.iterations,
                residuals: traced.stats.residual_history.clone().unwrap_or_default(),
            });
            last_trace = Some((nu, rec));

            // Shift ablation: the paper reports ~10% fewer iterations with
            // µ = (1−2p)^ν·f_min on random landscapes.
            let shifted = solve(p, &landscape, &cfg).unwrap().stats.iterations;
            let plain = solve(
                p,
                &landscape,
                &SolverConfig {
                    shift: ShiftStrategy::None,
                    ..cfg
                },
            )
            .unwrap()
            .stats
            .iterations;
            iterations.push((nu, shifted, plain));
        }
        eprintln!("  ν = {nu} done");
    }

    // The iteration count is nearly ν-independent here, so total cost
    // scales like the matvec: extrapolate the quadratic baselines.
    s_full.extrapolate(max_nu, model_n2);
    s_x5.extrapolate(max_nu, |nu| {
        let n = (1u64 << nu) as f64;
        let ball: f64 = (0..=5u32.min(nu))
            .map(|k| qs_bitseq::binomial_f64(nu, k))
            .sum();
        n * ball
    });

    print_table(
        "Figure 3: overall solve times [s] (parallel backend)",
        &[s_full.clone(), s_x5.clone(), s_fmmp.clone()],
    );

    println!("\nshift ablation (paper: ~10% iteration reduction on random landscapes):");
    println!(
        "{:>4} {:>14} {:>12} {:>10}",
        "ν", "Pi+shift iters", "Pi iters", "saving"
    );
    for &(nu, shifted, plain) in &iterations {
        println!(
            "{nu:>4} {shifted:>14} {plain:>12} {:>9.1}%",
            100.0 * (plain as f64 - shifted as f64) / plain as f64
        );
    }

    dump_json(
        "fig3_solver",
        &Fig3Output {
            series: vec![s_full, s_x5, s_fmmp],
            iterations,
            trajectories,
        },
    );
    // Full event stream (timings included) for the largest traced size.
    if let Some((nu, rec)) = last_trace {
        dump_trace_jsonl(&format!("fig3_solver_nu{nu}"), rec.events());
    }
}
