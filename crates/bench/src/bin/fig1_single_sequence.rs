//! Figure 1 at **single-sequence granularity** — the view the paper says
//! the field could not previously afford:
//!
//! > "They would be even more interesting at the level of granularity of
//! > single sequences but they are very rare in the literature due to the
//! > limitations in chain lengths which can be handled computationally."
//!
//! With `Pi(Fmmp)` each grid point at ν = 20 costs a handful of
//! `Θ(N log₂ N)` products, so tracing *individual* sequence concentrations
//! through the error threshold is routine. We use a random landscape
//! (paper Eq. 13) — which has no error-class structure, so no reduced or
//! approximative method applies — and follow the master sequence, its
//! fittest competitor, a mid-weight sequence and the complement across the
//! error-rate sweep.
//!
//! The whole sweep is issued as one [`SolveRequest`]: the grid's error
//! rates become columns of a single batched block power iteration — the
//! same engine path the solve server coalesces concurrent HTTP requests
//! onto.
//!
//! Usage: `fig1_single_sequence [--max-nu NU] [--quick]`

use qs_bench::dump_json;
use quasispecies::{LandscapeSpec, SolveRequest};
use serde::Serialize;

#[derive(Serialize)]
struct SingleSeqOutput {
    nu: u32,
    ps: Vec<f64>,
    tracked: Vec<(String, u64)>,
    concentrations: Vec<Vec<f64>>,
    entropy: Vec<f64>,
}

fn main() {
    let (nu, quick) = qs_bench::harness_args(16);
    let points = if quick { 8 } else { 20 };
    let spec = LandscapeSpec::Random {
        nu,
        c: 5.0,
        sigma: 1.0,
        seed: 2011,
    };
    let landscape = spec.build().expect("landscape spec");
    let n = landscape.len();

    // Sequences to track: master, runner-up fitness, a mid-weight one, the
    // complement of the master.
    let runner_up = (1..n as u64)
        .max_by(|&a, &b| landscape.fitness(a).total_cmp(&landscape.fitness(b)))
        .unwrap();
    let mid = (1u64 << (nu / 2)) - 1;
    let complement = (n - 1) as u64;
    let tracked: Vec<(String, u64)> = vec![
        ("master".into(), 0),
        ("fittest mutant".into(), runner_up),
        (format!("weight-{} sequence", nu / 2), mid),
        ("complement".into(), complement),
    ];

    let ps: Vec<f64> = (1..=points)
        .map(|i| 0.004 * i as f64 * if quick { 2.5 } else { 1.0 })
        .collect();

    println!(
        "single-sequence error-threshold curves: ν = {nu} (N = {n}), random landscape, {} rates",
        ps.len()
    );
    print!("{:>8}", "p");
    for (name, _) in &tracked {
        print!(" {:>20}", name);
    }
    println!(" {:>10}", "entropy");

    // One request, every grid point: the sweep solves as a single block
    // iteration with one column per error rate.
    let result = SolveRequest::sweep(spec, ps.clone()).run().expect("sweep");
    let mut concentrations = Vec::new();
    let mut entropy = Vec::new();
    for point in &result.points {
        let qs = &point.solution;
        let row: Vec<f64> = tracked.iter().map(|&(_, i)| qs.concentration(i)).collect();
        print!("{:>8.4}", point.p);
        for &c in &row {
            print!(" {c:>20.6e}");
        }
        println!(" {:>10.4}", qs.entropy());
        concentrations.push(row);
        entropy.push(qs.entropy());
    }

    println!(
        "\nnote: the master's concentration collapses toward 1/N = {:.2e} while\n\
         individual mutant concentrations cross it — resolution no error-class\n\
         method can deliver (the landscape has none).",
        1.0 / n as f64
    );
    dump_json(
        "fig1_single_sequence",
        &SingleSeqOutput {
            nu,
            ps,
            tracked,
            concentrations,
            entropy,
        },
    );
}
