//! Bench-trend gate: diff a freshly measured `BENCH_matvec.json` against
//! the committed baseline and fail on per-kernel regressions.
//!
//! ```text
//! bench_trend [--baseline PATH] [--current PATH] [--tolerance 0.20]
//!             [--solver-baseline PATH] [--solver-current PATH]
//! ```
//!
//! Raw ns/element is machine-dependent, so comparing absolute numbers
//! across a CI runner and the box that produced the committed record
//! would gate on hardware, not code. Instead every series is normalised
//! by the **same run's** `fmmp_serial_ref` series — the staged scalar
//! reference that every optimised kernel is measured against — and the
//! gate compares those ratios: a kernel regressed if it got slower
//! *relative to the reference kernel on the same machine, pool and ISA*.
//! Runs are matched by `(threads, isa_requested)` — the dispatch as asked
//! for on the bench command line, not what `auto` resolved to — so a
//! baseline recorded on an AVX-512 box still lines up with an `auto` run
//! on an AVX2-only runner. Records that predate `isa_requested` fall back
//! to their `isa` field, and ones that predate both match as `"auto"`. Sizes present in only one file are ignored,
//! so widening or narrowing the measured ν range never trips the gate.
//!
//! When `--solver-baseline`/`--solver-current` point at `BENCH_solver.json`
//! records, the gate also diffs the **block-compaction series**: the
//! compacted-to-full matvec-column ratio on the warm continuation sweep.
//! That ratio is a deterministic counter (not a timing), so it compares
//! cleanly across machines; it regresses when a solver change makes
//! compaction shed less work. Baselines that predate the block series are
//! skipped with a note, so the gate stays usable against old records.
//!
//! The parser below is deliberately dependency-free: the BENCH files are
//! hand-rolled JSON written by `bench_fused`, and this gate must stay
//! runnable in minimal environments (and in the offline test harness)
//! where serde may be stubbed.

use std::process::ExitCode;

// ---------------------------------------------------------------------
// Minimal JSON value + recursive-descent parser.

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, what: &str) -> String {
        format!("JSON parse error at byte {}: {what}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| self.error("bad number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    // The BENCH writers never emit escapes beyond these.
                    let esc = self.bytes.get(self.pos + 1).copied();
                    out.push(match esc {
                        Some(b'n') => '\n',
                        Some(b't') => '\t',
                        Some(b'"') => '"',
                        Some(b'\\') => '\\',
                        _ => return Err(self.error("unsupported escape")),
                    });
                    self.pos += 2;
                }
                Some(&b) => {
                    out.push(b as char);
                    self.pos += 1;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }
}

fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser::new(text);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing garbage"));
    }
    Ok(v)
}

// ---------------------------------------------------------------------
// BENCH_matvec.json model.

/// The series normalised against; never gated itself.
const REF_SERIES: &str = "fmmp_serial_ref";

struct Run {
    threads: usize,
    isa: String,
    nus: Vec<u32>,
    series: Vec<(String, Vec<f64>)>,
}

fn load_runs(path: &str) -> Result<Vec<Run>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let root = parse_json(&text).map_err(|e| format!("{path}: {e}"))?;
    let runs = root
        .get("runs")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{path}: no \"runs\" array"))?;
    let mut out = Vec::new();
    for run in runs {
        let threads =
            run.get("threads")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("{path}: run without \"threads\""))? as usize;
        let isa = run
            .get("isa_requested")
            .or_else(|| run.get("isa"))
            .and_then(Json::as_str)
            .unwrap_or("auto")
            .to_string();
        let nus = run
            .get("nus")
            .or_else(|| root.get("nus"))
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("{path}: run without \"nus\""))?
            .iter()
            .filter_map(|x| x.as_f64().map(|v| v as u32))
            .collect();
        let series = match run.get("series") {
            Some(Json::Obj(fields)) => fields
                .iter()
                .filter_map(|(name, arr)| {
                    let xs: Vec<f64> = arr.as_arr()?.iter().filter_map(Json::as_f64).collect();
                    Some((name.clone(), xs))
                })
                .collect(),
            _ => return Err(format!("{path}: run without \"series\" object")),
        };
        out.push(Run {
            threads,
            isa,
            nus,
            series,
        });
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// BENCH_solver.json block-compaction series.

struct BlockRecord {
    nu: u32,
    points: u32,
    ratio: f64,
}

/// Load the `"block"` object from a `BENCH_solver.json`. A missing file
/// or a record that predates the block series both come back as `None`
/// (skip, not fail); a present-but-malformed record is an error.
fn load_block(path: &str) -> Result<Option<BlockRecord>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(_) => return Ok(None),
    };
    let root = parse_json(&text).map_err(|e| format!("{path}: {e}"))?;
    let Some(block) = root.get("block") else {
        return Ok(None);
    };
    let field = |key: &str| {
        block
            .get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("{path}: block series without \"{key}\""))
    };
    Ok(Some(BlockRecord {
        nu: field("nu")? as u32,
        points: field("points")? as u32,
        ratio: field("ratio")?,
    }))
}

// ---------------------------------------------------------------------

struct Args {
    baseline: String,
    current: String,
    solver_baseline: String,
    solver_current: String,
    tolerance: f64,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().collect();
    let mut out = Args {
        baseline: "BENCH_matvec.baseline.json".into(),
        current: "BENCH_matvec.json".into(),
        solver_baseline: "BENCH_solver.baseline.json".into(),
        solver_current: "BENCH_solver.json".into(),
        tolerance: 0.20,
    };
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--baseline" => {
                if let Some(v) = argv.get(i + 1) {
                    out.baseline = v.clone();
                }
                i += 2;
            }
            "--current" => {
                if let Some(v) = argv.get(i + 1) {
                    out.current = v.clone();
                }
                i += 2;
            }
            "--solver-baseline" => {
                if let Some(v) = argv.get(i + 1) {
                    out.solver_baseline = v.clone();
                }
                i += 2;
            }
            "--solver-current" => {
                if let Some(v) = argv.get(i + 1) {
                    out.solver_current = v.clone();
                }
                i += 2;
            }
            "--tolerance" => {
                if let Some(v) = argv.get(i + 1).and_then(|s| s.parse().ok()) {
                    out.tolerance = v;
                }
                i += 2;
            }
            _ => i += 1,
        }
    }
    out
}

fn main() -> ExitCode {
    let args = parse_args();
    let (baseline, current) = match (load_runs(&args.baseline), load_runs(&args.current)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_trend: {e}");
            eprintln!(
                "bench_trend: a BENCH record is missing or malformed; regenerate it with\n  \
                 cargo run --release -p qs-bench --bin bench_fused -- \
                 --max-nu 18 --threads 1,2,4 --isas auto,scalar\n\
                 then re-run this gate with --baseline {} --current {}",
                args.baseline, args.current
            );
            return ExitCode::FAILURE;
        }
    };

    println!(
        "== bench trend: {} vs baseline {} (tolerance {:.0}% on reference-normalised ratios) ==",
        args.current,
        args.baseline,
        args.tolerance * 100.0
    );
    let mut regressions = 0usize;
    let mut compared = 0usize;
    for cur in &current {
        let Some(base) = baseline
            .iter()
            .find(|b| b.threads == cur.threads && b.isa == cur.isa)
        else {
            println!(
                "  ({} threads, {}): no matching baseline run, skipped",
                cur.threads, cur.isa
            );
            continue;
        };
        let (Some(cur_ref), Some(base_ref)) = (
            cur.series.iter().find(|(n, _)| n == REF_SERIES),
            base.series.iter().find(|(n, _)| n == REF_SERIES),
        ) else {
            println!(
                "  ({} threads, {}): missing {REF_SERIES}, skipped",
                cur.threads, cur.isa
            );
            continue;
        };
        for (name, cur_xs) in &cur.series {
            if name == REF_SERIES {
                continue;
            }
            let Some((_, base_xs)) = base.series.iter().find(|(n, _)| n == name) else {
                continue;
            };
            for (i, &nu) in cur.nus.iter().enumerate() {
                let Some(j) = base.nus.iter().position(|&b| b == nu) else {
                    continue;
                };
                let (Some(&cx), Some(&cr)) = (cur_xs.get(i), cur_ref.1.get(i)) else {
                    continue;
                };
                let (Some(&bx), Some(&br)) = (base_xs.get(j), base_ref.1.get(j)) else {
                    continue;
                };
                if !(cr > 0.0 && br > 0.0 && cx > 0.0 && bx > 0.0) {
                    continue;
                }
                compared += 1;
                let (cur_ratio, base_ratio) = (cx / cr, bx / br);
                if cur_ratio > (1.0 + args.tolerance) * base_ratio {
                    eprintln!(
                        "  REGRESSION {name} at ν={nu} ({} threads, {}): {:.3}× reference \
                         vs baseline {:.3}× (+{:.0}%)",
                        cur.threads,
                        cur.isa,
                        cur_ratio,
                        base_ratio,
                        (cur_ratio / base_ratio - 1.0) * 100.0
                    );
                    regressions += 1;
                }
            }
        }
    }
    // Block-compaction series: a deterministic counter ratio, compared
    // directly (no reference normalisation needed).
    match (
        load_block(&args.solver_baseline),
        load_block(&args.solver_current),
    ) {
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_trend: {e}");
            return ExitCode::FAILURE;
        }
        (Ok(Some(base)), Ok(Some(cur))) => {
            if base.nu != cur.nu || base.points != cur.points {
                println!(
                    "  block sweep: workload changed (ν={} {}pt vs ν={} {}pt), skipped",
                    cur.nu, cur.points, base.nu, base.points
                );
            } else {
                compared += 1;
                if !(cur.ratio <= (1.0 + args.tolerance) * base.ratio) {
                    eprintln!(
                        "  REGRESSION block sweep (ν={}, {} points): compaction pays {:.4}× \
                         the fixed-width matvec-column bill vs baseline {:.4}× (+{:.0}%)",
                        cur.nu,
                        cur.points,
                        cur.ratio,
                        base.ratio,
                        (cur.ratio / base.ratio - 1.0) * 100.0
                    );
                    regressions += 1;
                } else {
                    println!(
                        "  block sweep (ν={}, {} points): compaction ratio {:.4} vs \
                         baseline {:.4}, within tolerance",
                        cur.nu, cur.points, cur.ratio, base.ratio
                    );
                }
            }
        }
        _ => println!(
            "  (block series absent from {} or {}, skipped)",
            args.solver_baseline, args.solver_current
        ),
    }

    if compared == 0 {
        eprintln!("bench_trend: no comparable (threads, isa, ν) points found");
        return ExitCode::FAILURE;
    }
    if regressions > 0 {
        eprintln!("bench_trend: {regressions} regression(s) across {compared} compared points");
        return ExitCode::FAILURE;
    }
    println!("bench_trend OK: {compared} points within tolerance");
    ExitCode::SUCCESS
}
