//! Serving-path benchmark: persistent connections vs `Connection: close`
//! and warm-started vs cold spectral sweeps, against in-process
//! [`qs_server::Server`] instances.
//!
//! Two measurements, both written to `BENCH_server.json`:
//!
//! 1. **Connection reuse** — a primed (cache-hit) solve endpoint is
//!    hammered once opening a fresh TCP connection per request and once
//!    over keep-alive connections; p50/p99 latency and requests/s per
//!    mode, plus the keep-alive throughput speedup.
//! 2. **Warm-start continuation** — one ν = 14 single-peak (`f0 = 4`)
//!    sweep over 16 error rates at `tol = 1e-8`, solved cold
//!    (`"warm_start": false`) and warm on separate servers; total
//!    matvecs and iterations per mode, plus the warm/cold matvec ratio.
//!    The grid stays below the error threshold (`p_max ≈ ln f0 / ν ≈
//!    0.099`): continuation helps where convergence is seed-limited, not
//!    in the near-threshold regime where the collapsing spectral gap
//!    dominates any start vector.
//!
//! The loadgen is dependency-free: raw `TcpStream`s and hand-rolled
//! HTTP/1.1, so the numbers measure the server, not a client library.
//!
//! Usage: `bench_serve [--conns N] [--requests M] [--out PATH]
//! [--guard-warm RATIO]` — with `--guard-warm`, exits non-zero when the
//! warm sweep costs more than `RATIO` × the cold sweep's matvecs (CI
//! pins 0.6).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

use qs_server::{Server, ServerConfig};
use serde_json::Value;

/// One keep-alive HTTP client connection.
struct Client {
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).ok();
        Client {
            reader: BufReader::new(stream),
        }
    }

    /// Send one request and read the full response (status, body).
    fn send(&mut self, method: &str, path: &str, body: &str, close: bool) -> (u16, String) {
        let connection = if close { "close" } else { "keep-alive" };
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: bench\r\nconnection: {connection}\r\n\
             content-length: {}\r\n\r\n",
            body.len()
        );
        let stream = self.reader.get_mut();
        stream.write_all(head.as_bytes()).expect("write head");
        stream.write_all(body.as_bytes()).expect("write body");
        stream.flush().expect("flush");

        let mut status_line = String::new();
        self.reader.read_line(&mut status_line).expect("status");
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("header");
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().expect("content-length");
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).expect("body");
        (status, String::from_utf8(body).expect("utf8 body"))
    }
}

fn start_server(config: ServerConfig) -> (SocketAddr, thread::JoinHandle<()>) {
    let server = Server::bind(config).expect("bind bench server");
    let addr = server.local_addr();
    (addr, thread::spawn(move || server.run()))
}

fn shutdown(addr: SocketAddr, handle: thread::JoinHandle<()>) {
    let mut c = Client::connect(addr);
    let _ = c.send("POST", "/shutdown", "", true);
    handle.join().expect("server thread");
}

fn quantile_us(sorted: &[u128], q: f64) -> u128 {
    let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

struct ModeStats {
    requests: usize,
    p50_us: u128,
    p99_us: u128,
    rps: f64,
}

fn summarize(mut lat_us: Vec<u128>, elapsed: Duration) -> ModeStats {
    lat_us.sort_unstable();
    ModeStats {
        requests: lat_us.len(),
        p50_us: quantile_us(&lat_us, 0.50),
        p99_us: quantile_us(&lat_us, 0.99),
        rps: lat_us.len() as f64 / elapsed.as_secs_f64(),
    }
}

/// Measure the primed solve endpoint: `conns` connections × `requests`
/// requests each, either a fresh connection per request or keep-alive.
fn run_connection_mode(
    addr: SocketAddr,
    body: &str,
    conns: usize,
    requests: usize,
    keep_alive: bool,
) -> ModeStats {
    let mut lat = Vec::with_capacity(conns * requests);
    let started = Instant::now();
    for _ in 0..conns {
        if keep_alive {
            let mut client = Client::connect(addr);
            for _ in 0..requests {
                let t = Instant::now();
                let (status, _) = client.send("POST", "/solve", body, false);
                lat.push(t.elapsed().as_micros());
                assert_eq!(status, 200);
            }
        } else {
            for _ in 0..requests {
                let t = Instant::now();
                let (status, _) = Client::connect(addr).send("POST", "/solve", body, true);
                lat.push(t.elapsed().as_micros());
                assert_eq!(status, 200);
            }
        }
    }
    summarize(lat, started.elapsed())
}

struct SweepStats {
    matvecs: u64,
    iterations: u64,
    warm_columns: u64,
    iterations_saved: u64,
}

/// Solve the continuation workload on a fresh server and tally solver
/// effort from the response JSON.
fn run_sweep(warm_start: bool) -> SweepStats {
    let (addr, handle) = start_server(ServerConfig {
        workers: 1,
        coalesce_window: Duration::from_millis(1),
        ..Default::default()
    });
    let nu = 14;
    let points = 16;
    let (lo, hi) = (0.002f64, 0.06f64);
    let ps: Vec<String> = (0..points)
        .map(|i| format!("{}", lo + (hi - lo) * i as f64 / (points - 1) as f64))
        .collect();
    let body = format!(
        "{{\"landscape\":{{\"kind\":\"single-peak\",\"nu\":{nu},\"f0\":4.0}},\"ps\":[{}],\
         \"tol\":1e-8,\"warm_start\":{warm_start}}}",
        ps.join(",")
    );
    let (status, response) = Client::connect(addr).send("POST", "/solve", &body, true);
    assert_eq!(status, 200, "sweep failed: {response}");
    shutdown(addr, handle);

    let v: Value = serde_json::from_str(&response).expect("response JSON");
    let results = v["results"].as_array().expect("results array");
    assert_eq!(results.len(), points);
    let mut stats = SweepStats {
        matvecs: 0,
        iterations: 0,
        warm_columns: 0,
        iterations_saved: 0,
    };
    for point in results {
        assert!(point["converged"].as_bool().unwrap_or(false));
        stats.matvecs += point["matvecs"].as_u64().expect("matvecs");
        stats.iterations += point["iterations"].as_u64().expect("iterations");
        if let Some(warm) = point.get("warm_start") {
            stats.warm_columns += 1;
            stats.iterations_saved += warm["iterations_saved"].as_u64().unwrap_or(0);
        }
    }
    stats
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
    };
    let conns: usize = get("--conns").map_or(4, |v| v.parse().expect("--conns"));
    let requests: usize = get("--requests").map_or(50, |v| v.parse().expect("--requests"));
    let out = get("--out").map_or("BENCH_server.json", String::as_str);
    let guard_warm: Option<f64> = get("--guard-warm").map(|v| v.parse().expect("--guard-warm"));

    // --- connection reuse over a primed cache-hit endpoint ---
    let (addr, handle) = start_server(ServerConfig {
        workers: 2,
        coalesce_window: Duration::from_millis(5),
        ..Default::default()
    });
    let hit_body = r#"{"landscape":{"kind":"single-peak","nu":10},"p":0.01}"#;
    let (status, _) = Client::connect(addr).send("POST", "/solve", hit_body, true);
    assert_eq!(status, 200, "priming solve failed");
    let close = run_connection_mode(addr, hit_body, conns, requests, false);
    let keepalive = run_connection_mode(addr, hit_body, conns, requests, true);
    shutdown(addr, handle);
    let speedup = keepalive.rps / close.rps;

    // --- warm-start continuation vs cold sweep ---
    let cold = run_sweep(false);
    let warm = run_sweep(true);
    let warm_ratio = warm.matvecs as f64 / cold.matvecs as f64;

    println!(
        "connection reuse ({} conns x {} requests, cache-hit solves):",
        conns, requests
    );
    println!(
        "  close:      p50 {:>6} us  p99 {:>6} us  {:>8.0} req/s",
        close.p50_us, close.p99_us, close.rps
    );
    println!(
        "  keep-alive: p50 {:>6} us  p99 {:>6} us  {:>8.0} req/s  ({speedup:.2}x)",
        keepalive.p50_us, keepalive.p99_us, keepalive.rps
    );
    println!("warm-start continuation (nu=14, 16 points, tol 1e-8):");
    println!(
        "  cold: {} matvecs, {} iterations",
        cold.matvecs, cold.iterations
    );
    println!(
        "  warm: {} matvecs, {} iterations, {} warm columns, ~{} iterations saved ({warm_ratio:.3}x)",
        warm.matvecs, warm.iterations, warm.warm_columns, warm.iterations_saved
    );

    // Record the execution environment next to the numbers: a run where the
    // solve backend had one thread measured serial execution, and must not
    // be read as parallel performance (e.g. under the offline dev stubs,
    // whose rayon stand-in runs everything inline).
    let threads = Server::solver_threads();
    println!("solver backend threads: {threads}");
    let json = format!(
        "{{\n  \"provenance\": {{\"generated_by\": \"bench_serve\", \"solver_threads\": {}, \"serial\": {}}},\n  \
         \"close\": {{\"requests\": {}, \"p50_us\": {}, \"p99_us\": {}, \"rps\": {:.1}}},\n  \
         \"keepalive\": {{\"requests\": {}, \"p50_us\": {}, \"p99_us\": {}, \"rps\": {:.1}}},\n  \
         \"keepalive_speedup\": {:.3},\n  \
         \"cold\": {{\"matvecs\": {}, \"iterations\": {}}},\n  \
         \"warm\": {{\"matvecs\": {}, \"iterations\": {}, \"warm_columns\": {}, \"iterations_saved\": {}}},\n  \
         \"warm_ratio\": {:.4}\n}}\n",
        threads, threads <= 1,
        close.requests, close.p50_us, close.p99_us, close.rps,
        keepalive.requests, keepalive.p50_us, keepalive.p99_us, keepalive.rps,
        speedup,
        cold.matvecs, cold.iterations,
        warm.matvecs, warm.iterations, warm.warm_columns, warm.iterations_saved,
        warm_ratio,
    );
    std::fs::write(out, &json).expect("write BENCH_server.json");
    println!("wrote {out}");

    if let Some(bound) = guard_warm {
        if warm_ratio.is_nan() || warm_ratio > bound {
            eprintln!("GUARD FAILED: warm/cold matvec ratio {warm_ratio:.4} > {bound}");
            std::process::exit(1);
        }
        println!("guard ok: warm/cold matvec ratio {warm_ratio:.4} <= {bound}");
    }
}
