//! Fused-kernel benchmark: staged reference vs the fused cache-blocked
//! butterfly kernels (serial and parallel) and the batched multi-vector
//! apply, plus end-to-end solver timings per engine.
//!
//! The matvec matrix runs **twice** — once on a 1-thread pool and once on
//! a multi-thread pool (both built with `rayon::ThreadPoolBuilder`) — so
//! the committed record separates single-core kernel quality from
//! span-parallel scaling. Unlike the figure binaries (which mirror the
//! paper's plots into `bench_results/`), this harness writes two
//! **root-level** files — `BENCH_matvec.json` and `BENCH_solver.json` — so
//! the repository carries a committed record of the fused-kernel speedups,
//! and CI's `perf-smoke` job can diff them as artifacts.
//!
//! ```text
//! bench_fused [--max-nu N] [--quick] [--guard R] [--guard-batch R]
//! ```
//!
//! `--guard R` turns the run into a regression gate: exit nonzero if any
//! fused kernel is more than `R`× slower than its staged reference at any
//! measured ν. `--guard-batch R` gates the column-blocked batched apply:
//! exit nonzero if its per-column cost exceeds `R`× the single-vector
//! fused cost at any measured ν on the 1-thread pool (CI uses
//! `--guard 2.0 --guard-batch 1.5`).

use qs_bench::time_median;
use qs_landscape::SinglePeak;
use qs_matvec::{Fmmp, LinearOperator, ParFmmp};
use quasispecies::{solve, Engine, SolverConfig};

/// Columns in the batched-apply measurement.
const BATCH: usize = 8;

struct Args {
    max_nu: u32,
    quick: bool,
    guard: Option<f64>,
    guard_batch: Option<f64>,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().collect();
    let mut out = Args {
        max_nu: 22,
        quick: false,
        guard: None,
        guard_batch: None,
    };
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--max-nu" => {
                if let Some(v) = argv.get(i + 1).and_then(|s| s.parse().ok()) {
                    out.max_nu = v;
                }
                i += 2;
            }
            "--guard" => {
                if let Some(v) = argv.get(i + 1).and_then(|s| s.parse().ok()) {
                    out.guard = Some(v);
                }
                i += 2;
            }
            "--guard-batch" => {
                if let Some(v) = argv.get(i + 1).and_then(|s| s.parse().ok()) {
                    out.guard_batch = Some(v);
                }
                i += 2;
            }
            "--quick" => {
                out.quick = true;
                i += 1;
            }
            _ => i += 1,
        }
    }
    out
}

/// Deterministic, positive, non-uniform start vector.
fn test_vector(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| 1.0 + ((i.wrapping_mul(2654435761)) % 1000) as f64 / 1000.0)
        .collect()
}

/// Median ns/element for one in-place application of `op`.
fn ns_per_element(op: &dyn LinearOperator, v: &[f64], warmup: usize, reps: usize) -> f64 {
    let mut buf = v.to_vec();
    let n = v.len() as f64;
    // Re-seeding each rep would swamp small sizes with copy cost; the
    // iterate stays finite under repeated Q applications (column
    // stochastic), so reuse the buffer.
    time_median(|| op.apply_in_place(&mut buf), warmup, reps) * 1e9 / n
}

/// JSON array of numbers (hand-rolled: the file must be readable even
/// where serde is stubbed out).
fn json_f64s(xs: &[f64]) -> String {
    let items: Vec<String> = xs.iter().map(|x| format!("{x:.4}")).collect();
    format!("[{}]", items.join(", "))
}

fn json_u32s(xs: &[u32]) -> String {
    let items: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
    format!("[{}]", items.join(", "))
}

/// One matvec measurement matrix (all five series over `nus`), taken on
/// whatever thread pool is installed when this runs.
struct MatvecRun {
    threads: usize,
    serial_ref: Vec<f64>,
    serial_fused: Vec<f64>,
    par_ref: Vec<f64>,
    par_fused: Vec<f64>,
    batch_fused: Vec<f64>,
}

impl MatvecRun {
    fn json_entry(&self, nus: &[u32]) -> String {
        format!(
            "    {{\n      \"threads\": {},\n      \"nus\": {},\n      \"series\": {{\n        \
             \"fmmp_serial_ref\": {},\n        \"fmmp_serial_fused\": {},\n        \
             \"fmmp_parallel_ref\": {},\n        \"fmmp_parallel_fused\": {},\n        \
             \"fmmp_batch_fused\": {}\n      }}\n    }}",
            self.threads,
            json_u32s(nus),
            json_f64s(&self.serial_ref),
            json_f64s(&self.serial_fused),
            json_f64s(&self.par_ref),
            json_f64s(&self.par_fused),
            json_f64s(&self.batch_fused),
        )
    }
}

/// Measure all five series at every ν on the current pool.
fn run_matvec_series(nus: &[u32], p: f64, quick: bool) -> MatvecRun {
    let mut run = MatvecRun {
        threads: rayon::current_num_threads(),
        serial_ref: Vec::new(),
        serial_fused: Vec::new(),
        par_ref: Vec::new(),
        par_fused: Vec::new(),
        batch_fused: Vec::new(),
    };
    println!(
        "== fused-kernel matvec bench (ns/element, median; batch = {BATCH} columns; {} thread{}) ==",
        run.threads,
        if run.threads == 1 { "" } else { "s" }
    );
    println!(
        "{:>4} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "ν", "serial-ref", "serial-fused", "par-ref", "par-fused", "batch-fused"
    );
    for &nu in nus {
        let n = 1usize << nu;
        let v = test_vector(n);
        // Budget ≈ constant total elements per series.
        let reps = if quick {
            3
        } else {
            (1usize << 24).checked_div(n).unwrap_or(1).clamp(3, 64)
        };
        let warmup = if quick { 1 } else { 2 };

        let sr = ns_per_element(&Fmmp::new(nu, p), &v, warmup, reps);
        let sf = ns_per_element(&Fmmp::fused(nu, p), &v, warmup, reps);
        let pr = ns_per_element(&ParFmmp::new(nu, p), &v, warmup, reps);
        let pf = ns_per_element(&ParFmmp::fused(nu, p), &v, warmup, reps);

        let op = Fmmp::fused(nu, p);
        let mut slab = Vec::with_capacity(n * BATCH);
        for _ in 0..BATCH {
            slab.extend_from_slice(&v);
        }
        let bf = time_median(|| op.apply_batch(&mut slab), warmup, reps) * 1e9 / (n * BATCH) as f64;

        println!("{nu:>4} {sr:>12.3} {sf:>12.3} {pr:>12.3} {pf:>12.3} {bf:>12.3}");
        run.serial_ref.push(sr);
        run.serial_fused.push(sf);
        run.par_ref.push(pr);
        run.par_fused.push(pf);
        run.batch_fused.push(bf);
    }
    run
}

fn main() {
    let args = parse_args();
    let p = 0.01;
    let min_nu = 8u32.min(args.max_nu);
    let nus: Vec<u32> = (min_nu..=args.max_nu).step_by(2).collect();

    // One single-thread run isolates kernel quality; one multi-thread run
    // exposes span-parallel scaling. Both go into the committed record.
    let threads_multi = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .max(2);
    let mut runs = Vec::new();
    for threads in [1, threads_multi] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("thread pool");
        runs.push(pool.install(|| run_matvec_series(&nus, p, args.quick)));
        println!();
    }

    let run_entries: Vec<String> = runs.iter().map(|r| r.json_entry(&nus)).collect();
    let matvec_json = format!(
        "{{\n  \"unit\": \"ns_per_element\",\n  \"p\": {p},\n  \"batch_columns\": {BATCH},\n  \
         \"nus\": {},\n  \"runs\": [\n{}\n  ]\n}}\n",
        json_u32s(&nus),
        run_entries.join(",\n"),
    );
    match std::fs::write("BENCH_matvec.json", &matvec_json) {
        Ok(()) => println!("   (matvec data → BENCH_matvec.json)"),
        Err(e) => eprintln!("warning: could not write BENCH_matvec.json: {e}"),
    }

    // --- End-to-end solver timings per engine (ambient pool).
    let solver_max = if args.quick {
        args.max_nu.min(12)
    } else {
        args.max_nu.min(16)
    };
    let solver_nus: Vec<u32> = (min_nu..=solver_max).step_by(2).collect();
    let engines = [
        Engine::Fmmp,
        Engine::FmmpFused,
        Engine::FmmpParallel,
        Engine::FmmpParallelFused,
    ];
    println!("\n== solver bench (seconds per solve, median; single-peak, p = {p}) ==");
    let mut solver_rows = Vec::new();
    for &nu in &solver_nus {
        let landscape = SinglePeak::new(nu, 2.0, 1.0);
        for engine in engines {
            let config = SolverConfig {
                engine,
                ..Default::default()
            };
            let reps = if args.quick { 3 } else { 5 };
            let seconds = time_median(
                || {
                    let _ = std::hint::black_box(solve(p, &landscape, &config).unwrap());
                },
                1,
                reps,
            );
            let qs = solve(p, &landscape, &config).unwrap();
            println!(
                "  ν={nu:<3} {:<16} {seconds:>12.6}s  ({} iterations)",
                engine.label(nu),
                qs.stats.iterations
            );
            solver_rows.push(format!(
                "    {{\"nu\": {nu}, \"engine\": \"{}\", \"seconds\": {seconds:.6}, \
                 \"iterations\": {}}}",
                engine.label(nu),
                qs.stats.iterations
            ));
        }
    }
    let solver_json = format!(
        "{{\n  \"landscape\": \"single-peak f0=2 frest=1\",\n  \"p\": {p},\n  \
         \"tol\": 1e-13,\n  \"threads\": {},\n  \"entries\": [\n{}\n  ]\n}}\n",
        rayon::current_num_threads(),
        solver_rows.join(",\n"),
    );
    match std::fs::write("BENCH_solver.json", &solver_json) {
        Ok(()) => println!("   (solver data → BENCH_solver.json)"),
        Err(e) => eprintln!("warning: could not write BENCH_solver.json: {e}"),
    }

    // --- Regression gates (CI perf-smoke).
    let mut failed = false;
    if let Some(ratio) = args.guard {
        for run in &runs {
            for (i, &nu) in nus.iter().enumerate() {
                for (fused, reference, what) in [
                    (run.serial_fused[i], run.serial_ref[i], "serial"),
                    (run.par_fused[i], run.par_ref[i], "parallel"),
                ] {
                    if fused > ratio * reference {
                        eprintln!(
                            "guard FAILED at ν={nu} ({} threads): {what} fused {fused:.3} \
                             ns/el > {ratio}× reference {reference:.3} ns/el",
                            run.threads
                        );
                        failed = true;
                    }
                }
            }
        }
        if !failed {
            println!("guard OK: fused within {ratio}× of reference at every measured ν");
        }
    }
    if let Some(ratio) = args.guard_batch {
        // Batch quality is a single-core kernel property; gate it on the
        // 1-thread run so pool scheduling noise cannot mask a layout
        // regression.
        let single = &runs[0];
        for (i, &nu) in nus.iter().enumerate() {
            let (batch, fused) = (single.batch_fused[i], single.serial_fused[i]);
            if batch > ratio * fused {
                eprintln!(
                    "guard-batch FAILED at ν={nu}: batched apply {batch:.3} ns/el per column > \
                     {ratio}× single-vector fused {fused:.3} ns/el"
                );
                failed = true;
            }
        }
        if !failed {
            println!(
                "guard-batch OK: batched apply within {ratio}× of single-vector fused \
                 at every measured ν"
            );
        }
    }
    if failed {
        std::process::exit(1);
    }
}
