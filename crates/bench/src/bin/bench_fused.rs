//! Fused-kernel benchmark: staged reference vs the fused cache-blocked
//! butterfly kernels (serial and parallel) and the batched multi-vector
//! apply, plus end-to-end solver timings per engine.
//!
//! Unlike the figure binaries (which mirror the paper's plots into
//! `bench_results/`), this harness writes two **root-level** files —
//! `BENCH_matvec.json` and `BENCH_solver.json` — so the repository carries
//! a committed record of the fused-kernel speedups, and CI's `perf-smoke`
//! job can diff them as artifacts.
//!
//! ```text
//! bench_fused [--max-nu N] [--quick] [--guard R]
//! ```
//!
//! `--guard R` turns the run into a regression gate: exit nonzero if any
//! fused kernel is more than `R`× slower than its staged reference at any
//! measured ν (CI uses `--guard 2.0`).

use qs_bench::time_median;
use qs_landscape::SinglePeak;
use qs_matvec::{Fmmp, LinearOperator, ParFmmp};
use quasispecies::{solve, Engine, SolverConfig};

/// Columns in the batched-apply measurement.
const BATCH: usize = 8;

struct Args {
    max_nu: u32,
    quick: bool,
    guard: Option<f64>,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().collect();
    let mut out = Args {
        max_nu: 22,
        quick: false,
        guard: None,
    };
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--max-nu" => {
                if let Some(v) = argv.get(i + 1).and_then(|s| s.parse().ok()) {
                    out.max_nu = v;
                }
                i += 2;
            }
            "--guard" => {
                if let Some(v) = argv.get(i + 1).and_then(|s| s.parse().ok()) {
                    out.guard = Some(v);
                }
                i += 2;
            }
            "--quick" => {
                out.quick = true;
                i += 1;
            }
            _ => i += 1,
        }
    }
    out
}

/// Deterministic, positive, non-uniform start vector.
fn test_vector(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| 1.0 + ((i.wrapping_mul(2654435761)) % 1000) as f64 / 1000.0)
        .collect()
}

/// Median ns/element for one in-place application of `op`.
fn ns_per_element(op: &dyn LinearOperator, v: &[f64], warmup: usize, reps: usize) -> f64 {
    let mut buf = v.to_vec();
    let n = v.len() as f64;
    // Re-seeding each rep would swamp small sizes with copy cost; the
    // iterate stays finite under repeated Q applications (column
    // stochastic), so reuse the buffer.
    time_median(|| op.apply_in_place(&mut buf), warmup, reps) * 1e9 / n
}

/// JSON array of numbers (hand-rolled: the file must be readable even
/// where serde is stubbed out).
fn json_f64s(xs: &[f64]) -> String {
    let items: Vec<String> = xs.iter().map(|x| format!("{x:.4}")).collect();
    format!("[{}]", items.join(", "))
}

fn json_u32s(xs: &[u32]) -> String {
    let items: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
    format!("[{}]", items.join(", "))
}

fn main() {
    let args = parse_args();
    let p = 0.01;
    let min_nu = 8u32.min(args.max_nu);
    let nus: Vec<u32> = (min_nu..=args.max_nu).step_by(2).collect();

    let mut serial_ref = Vec::new();
    let mut serial_fused = Vec::new();
    let mut par_ref = Vec::new();
    let mut par_fused = Vec::new();
    let mut batch_fused = Vec::new();

    println!(
        "== fused-kernel matvec bench (ns/element, median; batch = {BATCH} columns; {} threads) ==",
        rayon::current_num_threads()
    );
    println!(
        "{:>4} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "ν", "serial-ref", "serial-fused", "par-ref", "par-fused", "batch-fused"
    );
    for &nu in &nus {
        let n = 1usize << nu;
        let v = test_vector(n);
        // Budget ≈ constant total elements per series.
        let reps = if args.quick {
            3
        } else {
            (1usize << 24).checked_div(n).unwrap_or(1).clamp(3, 64)
        };
        let warmup = if args.quick { 1 } else { 2 };

        let sr = ns_per_element(&Fmmp::new(nu, p), &v, warmup, reps);
        let sf = ns_per_element(&Fmmp::fused(nu, p), &v, warmup, reps);
        let pr = ns_per_element(&ParFmmp::new(nu, p), &v, warmup, reps);
        let pf = ns_per_element(&ParFmmp::fused(nu, p), &v, warmup, reps);

        let op = Fmmp::fused(nu, p);
        let mut slab = Vec::with_capacity(n * BATCH);
        for _ in 0..BATCH {
            slab.extend_from_slice(&v);
        }
        let bf = time_median(|| op.apply_batch(&mut slab), warmup, reps) * 1e9 / (n * BATCH) as f64;

        println!("{nu:>4} {sr:>12.3} {sf:>12.3} {pr:>12.3} {pf:>12.3} {bf:>12.3}");
        serial_ref.push(sr);
        serial_fused.push(sf);
        par_ref.push(pr);
        par_fused.push(pf);
        batch_fused.push(bf);
    }

    let matvec_json = format!(
        "{{\n  \"unit\": \"ns_per_element\",\n  \"p\": {p},\n  \"batch_columns\": {BATCH},\n  \
         \"threads\": {},\n  \"nus\": {},\n  \"series\": {{\n    \
         \"fmmp_serial_ref\": {},\n    \"fmmp_serial_fused\": {},\n    \
         \"fmmp_parallel_ref\": {},\n    \"fmmp_parallel_fused\": {},\n    \
         \"fmmp_batch_fused\": {}\n  }}\n}}\n",
        rayon::current_num_threads(),
        json_u32s(&nus),
        json_f64s(&serial_ref),
        json_f64s(&serial_fused),
        json_f64s(&par_ref),
        json_f64s(&par_fused),
        json_f64s(&batch_fused),
    );
    match std::fs::write("BENCH_matvec.json", &matvec_json) {
        Ok(()) => println!("   (matvec data → BENCH_matvec.json)"),
        Err(e) => eprintln!("warning: could not write BENCH_matvec.json: {e}"),
    }

    // --- End-to-end solver timings per engine.
    let solver_max = if args.quick {
        args.max_nu.min(12)
    } else {
        args.max_nu.min(16)
    };
    let solver_nus: Vec<u32> = (min_nu..=solver_max).step_by(2).collect();
    let engines = [
        Engine::Fmmp,
        Engine::FmmpFused,
        Engine::FmmpParallel,
        Engine::FmmpParallelFused,
    ];
    println!("\n== solver bench (seconds per solve, median; single-peak, p = {p}) ==");
    let mut solver_rows = Vec::new();
    for &nu in &solver_nus {
        let landscape = SinglePeak::new(nu, 2.0, 1.0);
        for engine in engines {
            let config = SolverConfig {
                engine,
                ..Default::default()
            };
            let reps = if args.quick { 3 } else { 5 };
            let seconds = time_median(
                || {
                    let _ = std::hint::black_box(solve(p, &landscape, &config).unwrap());
                },
                1,
                reps,
            );
            let qs = solve(p, &landscape, &config).unwrap();
            println!(
                "  ν={nu:<3} {:<16} {seconds:>12.6}s  ({} iterations)",
                engine.label(nu),
                qs.stats.iterations
            );
            solver_rows.push(format!(
                "    {{\"nu\": {nu}, \"engine\": \"{}\", \"seconds\": {seconds:.6}, \
                 \"iterations\": {}}}",
                engine.label(nu),
                qs.stats.iterations
            ));
        }
    }
    let solver_json = format!(
        "{{\n  \"landscape\": \"single-peak f0=2 frest=1\",\n  \"p\": {p},\n  \
         \"tol\": 1e-13,\n  \"threads\": {},\n  \"entries\": [\n{}\n  ]\n}}\n",
        rayon::current_num_threads(),
        solver_rows.join(",\n"),
    );
    match std::fs::write("BENCH_solver.json", &solver_json) {
        Ok(()) => println!("   (solver data → BENCH_solver.json)"),
        Err(e) => eprintln!("warning: could not write BENCH_solver.json: {e}"),
    }

    // --- Regression gate (CI perf-smoke).
    if let Some(ratio) = args.guard {
        let mut failed = false;
        for (i, &nu) in nus.iter().enumerate() {
            for (fused, reference, what) in [
                (serial_fused[i], serial_ref[i], "serial"),
                (par_fused[i], par_ref[i], "parallel"),
            ] {
                if fused > ratio * reference {
                    eprintln!(
                        "guard FAILED at ν={nu}: {what} fused {fused:.3} ns/el > \
                         {ratio}× reference {reference:.3} ns/el"
                    );
                    failed = true;
                }
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!("guard OK: fused within {ratio}× of reference at every measured ν");
    }
}
