//! Fused-kernel benchmark: staged reference vs the fused cache-blocked
//! butterfly kernels (serial and parallel) and the batched multi-vector
//! apply, plus end-to-end solver timings per engine.
//!
//! The matvec matrix runs **twice** — once on a 1-thread pool and once on
//! a multi-thread pool (both built with `rayon::ThreadPoolBuilder`) — so
//! the committed record separates single-core kernel quality from
//! span-parallel scaling. Unlike the figure binaries (which mirror the
//! paper's plots into `bench_results/`), this harness writes two
//! **root-level** files — `BENCH_matvec.json` and `BENCH_solver.json` — so
//! the repository carries a committed record of the fused-kernel speedups,
//! and CI's `perf-smoke` job can diff them as artifacts.
//!
//! ```text
//! bench_fused [--max-nu N] [--quick] [--threads 1,2,4] [--isas auto,scalar]
//!             [--guard R] [--guard-batch R] [--guard-parallel R]
//!             [--guard-block R]
//! ```
//!
//! `--threads` selects the pool sizes to measure (default: `1` plus the
//! machine's available parallelism). `--isas` selects the SIMD dispatch
//! paths (`auto`, `scalar`, `avx2`, `avx512`); ISAs the host CPU lacks
//! are skipped with a note so one command line works everywhere.
//!
//! `--guard R` turns the run into a regression gate: exit nonzero if any
//! fused kernel is more than `R`× slower than its staged reference at any
//! measured ν. `--guard-batch R` gates the column-blocked batched apply:
//! exit nonzero if its per-column cost exceeds `R`× the single-vector
//! fused cost at any measured ν on the 1-thread pool. `--guard-parallel R`
//! gates span-schedule scaling: on every multi-thread run, the parallel
//! fused kernel must stay within `R`× of the same run's serial fused
//! kernel once ν ≥ 18 (where parallelism must pay for itself), and within
//! a hard 1.5× at *every* measured ν (no size may fall off a scaling
//! cliff). `--guard-block R` gates adaptive block compaction on the warm
//! continuation sweep: the compaction-on run must pay at most `R`× the
//! matvec-columns of the compaction-off run (counts, not timings, so the
//! gate is immune to runner noise). CI uses `--guard 2.0 --guard-batch 1.5
//! --guard-parallel 1.05 --guard-block 0.7`.

use qs_bench::time_median;
use qs_landscape::SinglePeak;
use qs_matvec::{Fmmp, LinearOperator, ParFmmp};
use quasispecies::{solve, Engine, LandscapeSpec, Method, Scheduling, SolveRequest, SolverConfig};

/// Columns in the batched-apply measurement.
const BATCH: usize = 8;

/// Size of the warm continuation sweep driven by the block-compaction
/// bench (and gated by `--guard-block`). Matches the ν=14, 16-point
/// sweep the serving bench records, so the two committed records
/// describe the same workload.
const BLOCK_SWEEP_NU: u32 = 14;
const BLOCK_SWEEP_POINTS: usize = 16;
const BLOCK_SWEEP_TOL: f64 = 1e-10;

/// First ν at which `--guard-parallel` applies its tight ratio: below
/// this the span schedule is expected to bail to serial, above it the
/// parallel path must at least match serial throughput.
const GUARD_PARALLEL_MIN_NU: u32 = 18;

/// Absolute scaling-cliff cap enforced by `--guard-parallel` at every ν.
const PARALLEL_BLOWUP_CAP: f64 = 1.5;

struct Args {
    max_nu: u32,
    quick: bool,
    threads: Option<Vec<usize>>,
    isas: Vec<String>,
    guard: Option<f64>,
    guard_batch: Option<f64>,
    guard_parallel: Option<f64>,
    guard_block: Option<f64>,
}

fn parse_list<T: std::str::FromStr>(s: &str) -> Option<Vec<T>> {
    let items: Vec<T> = s
        .split(',')
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .filter_map(|t| t.parse().ok())
        .collect();
    if items.is_empty() {
        None
    } else {
        Some(items)
    }
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().collect();
    let mut out = Args {
        max_nu: 22,
        quick: false,
        threads: None,
        isas: vec!["auto".into(), "scalar".into()],
        guard: None,
        guard_batch: None,
        guard_parallel: None,
        guard_block: None,
    };
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--max-nu" => {
                if let Some(v) = argv.get(i + 1).and_then(|s| s.parse().ok()) {
                    out.max_nu = v;
                }
                i += 2;
            }
            "--threads" => {
                if let Some(v) = argv.get(i + 1).and_then(|s| parse_list(s)) {
                    out.threads = Some(v);
                }
                i += 2;
            }
            "--isas" => {
                if let Some(v) = argv.get(i + 1).and_then(|s| parse_list(s)) {
                    out.isas = v;
                }
                i += 2;
            }
            "--guard" => {
                if let Some(v) = argv.get(i + 1).and_then(|s| s.parse().ok()) {
                    out.guard = Some(v);
                }
                i += 2;
            }
            "--guard-batch" => {
                if let Some(v) = argv.get(i + 1).and_then(|s| s.parse().ok()) {
                    out.guard_batch = Some(v);
                }
                i += 2;
            }
            "--guard-parallel" => {
                if let Some(v) = argv.get(i + 1).and_then(|s| s.parse().ok()) {
                    out.guard_parallel = Some(v);
                }
                i += 2;
            }
            "--guard-block" => {
                if let Some(v) = argv.get(i + 1).and_then(|s| s.parse().ok()) {
                    out.guard_block = Some(v);
                }
                i += 2;
            }
            "--quick" => {
                out.quick = true;
                i += 1;
            }
            _ => i += 1,
        }
    }
    out
}

/// Deterministic, positive, non-uniform start vector.
fn test_vector(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| 1.0 + ((i.wrapping_mul(2654435761)) % 1000) as f64 / 1000.0)
        .collect()
}

/// Median ns/element for one in-place application of `op`.
fn ns_per_element(op: &dyn LinearOperator, v: &[f64], warmup: usize, reps: usize) -> f64 {
    let mut buf = v.to_vec();
    let n = v.len() as f64;
    // Re-seeding each rep would swamp small sizes with copy cost; the
    // iterate stays finite under repeated Q applications (column
    // stochastic), so reuse the buffer.
    time_median(|| op.apply_in_place(&mut buf), warmup, reps) * 1e9 / n
}

/// JSON array of numbers (hand-rolled: the file must be readable even
/// where serde is stubbed out).
fn json_f64s(xs: &[f64]) -> String {
    let items: Vec<String> = xs.iter().map(|x| format!("{x:.4}")).collect();
    format!("[{}]", items.join(", "))
}

fn json_u32s(xs: &[u32]) -> String {
    let items: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
    format!("[{}]", items.join(", "))
}

/// One matvec measurement matrix (all five series over `nus`), taken on
/// whatever thread pool and SIMD dispatch are installed when this runs.
struct MatvecRun {
    threads: usize,
    /// The dispatch the kernels actually ran with (`auto` resolves to a
    /// concrete name before measuring).
    isa: String,
    /// The dispatch as requested on the command line (`auto`, `scalar`,
    /// ...). Trend comparisons match on this so that a record measured on
    /// an AVX-512 box still lines up with an `auto` run on an AVX2 runner.
    isa_requested: String,
    serial_ref: Vec<f64>,
    serial_fused: Vec<f64>,
    par_ref: Vec<f64>,
    par_fused: Vec<f64>,
    batch_fused: Vec<f64>,
    /// Workers the span schedule engaged at each ν on this pool/machine
    /// (≤ 1 means the parallel entry points fell back to serial code).
    workers: Vec<usize>,
}

impl MatvecRun {
    fn json_entry(&self, nus: &[u32]) -> String {
        format!(
            "    {{\n      \"threads\": {},\n      \"isa\": \"{}\",\n      \"isa_requested\": \"{}\",\n      \"nus\": {},\n      \
             \"series\": {{\n        \
             \"fmmp_serial_ref\": {},\n        \"fmmp_serial_fused\": {},\n        \
             \"fmmp_parallel_ref\": {},\n        \"fmmp_parallel_fused\": {},\n        \
             \"fmmp_batch_fused\": {}\n      }},\n      \"span_workers\": {}\n    }}",
            self.threads,
            self.isa,
            self.isa_requested,
            json_u32s(nus),
            json_f64s(&self.serial_ref),
            json_f64s(&self.serial_fused),
            json_f64s(&self.par_ref),
            json_f64s(&self.par_fused),
            json_f64s(&self.batch_fused),
            json_u32s(&self.workers.iter().map(|&w| w as u32).collect::<Vec<_>>()),
        )
    }
}

/// Measure all five series at every ν on the current pool and dispatch.
fn run_matvec_series(nus: &[u32], p: f64, quick: bool, isa_requested: &str) -> MatvecRun {
    let mut run = MatvecRun {
        threads: rayon::current_num_threads(),
        isa: qs_matvec::simd::active().name().to_string(),
        isa_requested: isa_requested.to_string(),
        serial_ref: Vec::new(),
        serial_fused: Vec::new(),
        par_ref: Vec::new(),
        par_fused: Vec::new(),
        batch_fused: Vec::new(),
        workers: Vec::new(),
    };
    println!(
        "== fused-kernel matvec bench (ns/element, median; batch = {BATCH} columns; \
         {} thread{}; {} kernels) ==",
        run.threads,
        if run.threads == 1 { "" } else { "s" },
        run.isa
    );
    println!(
        "{:>4} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "ν", "serial-ref", "serial-fused", "par-ref", "par-fused", "batch-fused"
    );
    for &nu in nus {
        let n = 1usize << nu;
        let v = test_vector(n);
        // Budget ≈ constant total elements per series.
        let reps = if quick {
            3
        } else {
            (1usize << 24).checked_div(n).unwrap_or(1).clamp(3, 64)
        };
        let warmup = if quick { 1 } else { 2 };

        let sr = ns_per_element(&Fmmp::new(nu, p), &v, warmup, reps);
        let sf = ns_per_element(&Fmmp::fused(nu, p), &v, warmup, reps);
        let pr = ns_per_element(&ParFmmp::new(nu, p), &v, warmup, reps);
        let pf = ns_per_element(&ParFmmp::fused(nu, p), &v, warmup, reps);

        let op = Fmmp::fused(nu, p);
        let mut slab = Vec::with_capacity(n * BATCH);
        for _ in 0..BATCH {
            slab.extend_from_slice(&v);
        }
        let bf = time_median(|| op.apply_batch(&mut slab), warmup, reps) * 1e9 / (n * BATCH) as f64;

        println!("{nu:>4} {sr:>12.3} {sf:>12.3} {pr:>12.3} {pf:>12.3} {bf:>12.3}");
        run.serial_ref.push(sr);
        run.serial_fused.push(sf);
        run.par_ref.push(pr);
        run.par_fused.push(pf);
        run.batch_fused.push(bf);
        run.workers.push(qs_matvec::schedule::span_workers(n));
    }
    run
}

fn main() {
    let args = parse_args();
    let p = 0.01;
    let min_nu = 8u32.min(args.max_nu);
    let nus: Vec<u32> = (min_nu..=args.max_nu).step_by(2).collect();

    // One single-thread run isolates kernel quality; the multi-thread runs
    // expose span-parallel scaling; per-ISA reruns separate SIMD gains from
    // schedule gains. All go into the committed record.
    let threads_list = args.threads.clone().unwrap_or_else(|| {
        let multi = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .max(2);
        vec![1, multi]
    });
    let mut runs = Vec::new();
    for &threads in &threads_list {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("thread pool");
        for isa_name in &args.isas {
            match isa_name.as_str() {
                "auto" => qs_matvec::simd::reset_auto(),
                other => match qs_matvec::Isa::from_name(other) {
                    Some(isa) => {
                        if qs_matvec::simd::force(isa).is_err() {
                            println!("   (skipping {other}: not available on this CPU)\n");
                            continue;
                        }
                    }
                    None => {
                        println!("   (skipping unknown ISA '{other}')\n");
                        continue;
                    }
                },
            }
            runs.push(pool.install(|| run_matvec_series(&nus, p, args.quick, isa_name)));
            println!();
        }
    }
    // Leave runtime detection in charge for the solver bench below.
    qs_matvec::simd::reset_auto();

    let run_entries: Vec<String> = runs.iter().map(|r| r.json_entry(&nus)).collect();
    let matvec_json = format!(
        "{{\n  \"provenance\": {{\"generated_by\": \"bench_fused\", \"solver_threads\": {}, \
         \"serial\": {}}},\n  \
         \"unit\": \"ns_per_element\",\n  \"p\": {p},\n  \"batch_columns\": {BATCH},\n  \
         \"nus\": {},\n  \"runs\": [\n{}\n  ]\n}}\n",
        rayon::current_num_threads(),
        rayon::current_num_threads() <= 1,
        json_u32s(&nus),
        run_entries.join(",\n"),
    );
    match std::fs::write("BENCH_matvec.json", &matvec_json) {
        Ok(()) => println!("   (matvec data → BENCH_matvec.json)"),
        Err(e) => eprintln!("warning: could not write BENCH_matvec.json: {e}"),
    }

    // --- End-to-end solver timings per engine (ambient pool).
    let solver_max = if args.quick {
        args.max_nu.min(12)
    } else {
        args.max_nu.min(16)
    };
    let solver_nus: Vec<u32> = (min_nu..=solver_max).step_by(2).collect();
    let engines = [
        Engine::Fmmp,
        Engine::FmmpFused,
        Engine::FmmpParallel,
        Engine::FmmpParallelFused,
    ];
    println!("\n== solver bench (seconds per solve, median; single-peak, p = {p}) ==");
    let mut solver_rows = Vec::new();
    for &nu in &solver_nus {
        let landscape = SinglePeak::new(nu, 2.0, 1.0);
        for engine in engines {
            let config = SolverConfig {
                engine,
                ..Default::default()
            };
            let reps = if args.quick { 3 } else { 5 };
            let seconds = time_median(
                || {
                    let _ = std::hint::black_box(solve(p, &landscape, &config).unwrap());
                },
                1,
                reps,
            );
            let qs = solve(p, &landscape, &config).unwrap();
            println!(
                "  ν={nu:<3} {:<16} {seconds:>12.6}s  ({} iterations)",
                engine.label(nu),
                qs.stats.iterations
            );
            solver_rows.push(format!(
                "    {{\"nu\": {nu}, \"engine\": \"{}\", \"seconds\": {seconds:.6}, \
                 \"iterations\": {}}}",
                engine.label(nu),
                qs.stats.iterations
            ));
        }
    }
    // --- Block-compaction sweep: the same warm ν=14 continuation sweep
    // the serving bench records, run with `Scheduling.compact` off and on.
    // Matvec-column counts are deterministic for a fixed request (the
    // compacted run replays the exact per-column iterate sequence of the
    // fixed-width run), so the comparison below is a counter diff, not a
    // timing, and survives noisy shared runners.
    // The grid runs from deep in the localised phase up near the ν=14
    // single-peak error threshold (p* = ln 2 / ν ≈ 0.0495): points near
    // threshold need far more iterations than early ones, so columns in
    // each continuation generation freeze at well-separated steps — the
    // staggered-convergence regime compaction is built for.
    let block_nu = BLOCK_SWEEP_NU.min(args.max_nu);
    let block_ps: Vec<f64> = (0..BLOCK_SWEEP_POINTS)
        .map(|i| 0.002 + 0.003 * i as f64)
        .collect();
    let run_block_sweep = |compact: bool| {
        let request = SolveRequest {
            landscape: LandscapeSpec::SinglePeak {
                nu: block_nu,
                f0: 2.0,
                f_rest: 1.0,
            },
            ps: block_ps.clone(),
            method: Method::Power,
            tol: BLOCK_SWEEP_TOL,
            max_iter: 400_000,
            scheduling: Scheduling {
                parallel: false,
                warm_start: true,
                compact,
            },
        };
        let start = std::time::Instant::now();
        let result = request.run().expect("block sweep solves");
        (result, start.elapsed().as_secs_f64())
    };
    let (block_full, full_secs) = run_block_sweep(false);
    let (block_compacted, compacted_secs) = run_block_sweep(true);
    let block_ratio = if block_full.block.matvec_columns > 0 {
        block_compacted.block.matvec_columns as f64 / block_full.block.matvec_columns as f64
    } else {
        f64::NAN
    };
    println!(
        "\n== block-compaction sweep (warm continuation, single-peak ν={block_nu}, \
         {BLOCK_SWEEP_POINTS} points, tol {BLOCK_SWEEP_TOL:e}) =="
    );
    println!(
        "  compact off: {:>8} matvec-columns                     {full_secs:>9.4}s",
        block_full.block.matvec_columns
    );
    println!(
        "  compact on:  {:>8} matvec-columns ({} saved, {} compactions)  {compacted_secs:>9.4}s",
        block_compacted.block.matvec_columns,
        block_compacted.block.matvec_columns_saved,
        block_compacted.block.compactions
    );
    println!("  ratio (on/off): {block_ratio:.4}");

    let solver_json = format!(
        "{{\n  \"provenance\": {{\"generated_by\": \"bench_fused\", \"solver_threads\": {}, \
         \"serial\": {}}},\n  \
         \"landscape\": \"single-peak f0=2 frest=1\",\n  \"p\": {p},\n  \
         \"tol\": 1e-13,\n  \"threads\": {},\n  \"entries\": [\n{}\n  ],\n  \
         \"block\": {{\"nu\": {block_nu}, \"points\": {BLOCK_SWEEP_POINTS}, \
         \"tol\": {BLOCK_SWEEP_TOL:e}, \
         \"full_matvec_columns\": {}, \"compacted_matvec_columns\": {}, \
         \"matvec_columns_saved\": {}, \"compactions\": {}, \"ratio\": {:.4}}}\n}}\n",
        rayon::current_num_threads(),
        rayon::current_num_threads() <= 1,
        rayon::current_num_threads(),
        solver_rows.join(",\n"),
        block_full.block.matvec_columns,
        block_compacted.block.matvec_columns,
        block_compacted.block.matvec_columns_saved,
        block_compacted.block.compactions,
        block_ratio,
    );
    match std::fs::write("BENCH_solver.json", &solver_json) {
        Ok(()) => println!("   (solver data → BENCH_solver.json)"),
        Err(e) => eprintln!("warning: could not write BENCH_solver.json: {e}"),
    }

    // --- Regression gates (CI perf-smoke).
    let mut failed = false;
    if let Some(ratio) = args.guard {
        for run in &runs {
            for (i, &nu) in nus.iter().enumerate() {
                for (fused, reference, what) in [
                    (run.serial_fused[i], run.serial_ref[i], "serial"),
                    (run.par_fused[i], run.par_ref[i], "parallel"),
                ] {
                    if fused > ratio * reference {
                        eprintln!(
                            "guard FAILED at ν={nu} ({} threads): {what} fused {fused:.3} \
                             ns/el > {ratio}× reference {reference:.3} ns/el",
                            run.threads
                        );
                        failed = true;
                    }
                }
            }
        }
        if !failed {
            println!("guard OK: fused within {ratio}× of reference at every measured ν");
        }
    }
    if let Some(ratio) = args.guard_batch {
        // Batch quality is a single-core kernel property; gate it on the
        // first 1-thread run so pool scheduling noise cannot mask a layout
        // regression.
        match runs.iter().find(|r| r.threads == 1) {
            None => println!("guard-batch skipped: no 1-thread run in --threads list"),
            Some(single) => {
                for (i, &nu) in nus.iter().enumerate() {
                    let (batch, fused) = (single.batch_fused[i], single.serial_fused[i]);
                    if batch > ratio * fused {
                        eprintln!(
                            "guard-batch FAILED at ν={nu}: batched apply {batch:.3} ns/el per \
                             column > {ratio}× single-vector fused {fused:.3} ns/el"
                        );
                        failed = true;
                    }
                }
                if !failed {
                    println!(
                        "guard-batch OK: batched apply within {ratio}× of single-vector fused \
                         at every measured ν"
                    );
                }
            }
        }
    }
    if let Some(ratio) = args.guard_parallel {
        // Span-schedule scaling gate: on every multi-thread run the
        // parallel fused path must not lose to the serial fused path where
        // parallelism is supposed to pay (ν ≥ GUARD_PARALLEL_MIN_NU), and
        // must never fall off a cliff at any ν. Serial and parallel come
        // from the same run, so machine speed and ISA cancel out.
        let mut checked = false;
        let mut parallel_failed = false;
        for run in runs.iter().filter(|r| r.threads > 1) {
            for (i, &nu) in nus.iter().enumerate() {
                let (par, serial) = (run.par_fused[i], run.serial_fused[i]);
                // The tight ratio only makes sense where the span schedule
                // actually engaged extra workers; when it (correctly) fell
                // back to serial — pool wider than the hardware, or span
                // below threshold — both series run identical code and any
                // delta is measurement noise. The blowup cap below still
                // applies everywhere.
                let engaged = run.workers.get(i).copied().unwrap_or(0) > 1;
                if engaged {
                    checked = true;
                }
                if engaged && nu >= GUARD_PARALLEL_MIN_NU && par > ratio * serial {
                    eprintln!(
                        "guard-parallel FAILED at ν={nu} ({} threads, {} kernels): parallel \
                         fused {par:.3} ns/el > {ratio}× serial fused {serial:.3} ns/el",
                        run.threads, run.isa
                    );
                    parallel_failed = true;
                }
                if par > PARALLEL_BLOWUP_CAP * serial {
                    eprintln!(
                        "guard-parallel FAILED at ν={nu} ({} threads, {} kernels): parallel \
                         fused {par:.3} ns/el blows past the {PARALLEL_BLOWUP_CAP}× scaling \
                         cliff cap vs serial fused {serial:.3} ns/el",
                        run.threads, run.isa
                    );
                    parallel_failed = true;
                }
            }
        }
        if !checked && !parallel_failed {
            println!(
                "guard-parallel skipped: the span schedule never engaged >1 worker \
                 (single-thread --threads list, or hardware parallelism of 1)"
            );
        } else if !parallel_failed {
            println!(
                "guard-parallel OK: multi-thread fused within {ratio}× of serial at \
                 ν≥{GUARD_PARALLEL_MIN_NU} and under the {PARALLEL_BLOWUP_CAP}× cap everywhere"
            );
        }
        failed = failed || parallel_failed;
    }
    if let Some(ratio) = args.guard_block {
        // Counter gate, not a timing gate: compaction must actually shed
        // work on the warm sweep. NaN (a zero-column denominator) fails
        // loudly rather than passing vacuously.
        if !(block_ratio <= ratio) {
            eprintln!(
                "guard-block FAILED: compaction-on sweep paid {} matvec-columns, \
                 {block_ratio:.4}× the compaction-off bill of {} (bound {ratio})",
                block_compacted.block.matvec_columns, block_full.block.matvec_columns
            );
            failed = true;
        } else {
            println!(
                "guard-block OK: compaction pays {block_ratio:.4}× the fixed-width \
                 matvec-column bill on the warm ν={block_nu} sweep (bound {ratio})"
            );
        }
    }
    if failed {
        std::process::exit(1);
    }
}
