//! Accuracy-vs-sparsification table for `Xmvp(d_max)` — the quantitative
//! claims scattered through the paper's text, gathered into one table:
//!
//! * §4: "the choice d_max = 5 … has been shown to yield an approximation
//!   error around 10⁻¹⁰" (at p = 0.01),
//! * §4: "the accuracy achieved with smaller values for d_max is usually
//!   too low",
//! * §Conclusions: "existing approximative methods … loose about 5 decimal
//!   digits of accuracy".
//!
//! For each `d_max` we report (a) the one-product matvec error
//! `‖Xmvp(d_max)·v − Q·v‖∞ / ‖Q·v‖∞` and (b) the end-to-end concentration
//! error of `Pi(Xmvp(d_max))` against `Pi(Fmmp)` on the paper's random
//! landscape, plus the per-row neighbour count (the cost driver).
//!
//! Usage: `accuracy_xmvp [--max-nu NU] [--quick]`

use qs_bench::dump_json;
use qs_landscape::Random;
use qs_matvec::{fmmp::fmmp_in_place, LinearOperator, Xmvp};
use quasispecies::{solve, Engine, SolverConfig};
use rand::{Rng, SeedableRng};
use serde::Serialize;

#[derive(Serialize)]
struct AccuracyRow {
    d_max: u32,
    neighbours_per_row: usize,
    matvec_rel_error: f64,
    concentration_error: f64,
    solver_iterations: usize,
}

fn main() {
    let (nu, quick) = qs_bench::harness_args(12);
    let p = 0.01;
    let n = 1usize << nu;
    let landscape = Random::new(nu, 5.0, 1.0, 4242);

    println!("Xmvp(d_max) accuracy table: ν = {nu}, p = {p}, random landscape (c=5, σ=1)");

    // Exact references.
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let v: Vec<f64> = (0..n).map(|_| rng.random::<f64>()).collect();
    let mut qv = v.clone();
    fmmp_in_place(&mut qv, p);
    let qv_norm = qs_linalg::norm_linf(&qv);
    let exact = solve(p, &landscape, &SolverConfig::default()).expect("exact solve");

    let d_range = if quick { 1..=5u32 } else { 1..=8u32 };
    let mut rows = Vec::new();
    println!(
        "{:>6} {:>16} {:>16} {:>20} {:>10}",
        "d_max", "neigh/row", "matvec rel err", "concentration err", "Pi iters"
    );
    for d_max in d_range {
        let op = Xmvp::new(nu, p, d_max);
        let approx = op.apply(&v);
        let matvec_rel_error = approx
            .iter()
            .zip(&qv)
            .fold(0.0f64, |m, (&a, &b)| m.max((a - b).abs()))
            / qv_norm;

        // End-to-end: solve with the truncated engine at a tolerance its
        // accuracy can reach (the paper pairs Xmvp(5) with τ = 1e-10).
        let tol = (matvec_rel_error * 10.0).clamp(1e-13, 1e-2);
        let cfg = SolverConfig {
            engine: Engine::Xmvp { d_max },
            tol,
            ..Default::default()
        };
        let (concentration_error, iterations) = match solve(p, &landscape, &cfg) {
            Ok(qs) => {
                let err = qs
                    .concentrations
                    .iter()
                    .zip(&exact.concentrations)
                    .fold(0.0f64, |m, (&a, &b)| m.max((a - b).abs()));
                (err, qs.stats.iterations)
            }
            Err(_) => (f64::NAN, 0),
        };
        println!(
            "{d_max:>6} {:>16} {matvec_rel_error:>16.3e} {concentration_error:>20.3e} {iterations:>10}",
            op.neighbours_per_row()
        );
        rows.push(AccuracyRow {
            d_max,
            neighbours_per_row: op.neighbours_per_row(),
            matvec_rel_error,
            concentration_error,
            solver_iterations: iterations,
        });
    }

    // Paper claims as assertions-in-print.
    if let Some(r5) = rows.iter().find(|r| r.d_max == 5) {
        println!(
            "\nd_max = 5 matvec error {:.1e} — paper: ≈ 1e-10 at p = 0.01 ✔",
            r5.matvec_rel_error
        );
        // f64 carries ~15-16 significant digits; digits lost ≈ 15 + log10(err).
        let digits_lost = (15.0 + r5.concentration_error.log10()).max(0.0);
        println!("≈ {digits_lost:.0} decimal digits lost vs the exact Fmmp (paper: 'about 5')");
    }
    dump_json("accuracy_xmvp", &rows);
}
