//! Reproduce **paper Figure 4**: speedup factors for solving the
//! quasispecies model, relative to the serial reference `CPU-Pi(Xmvp(ν))`,
//! for the algorithm × backend combinations
//!
//! * `GPU*-Pi(Fmmp)`, `CPU-Pi(Fmmp)`,
//! * `GPU*-Pi(Xmvp(5))`, `CPU-Pi(Xmvp(5))`,
//! * `GPU*-Pi(Xmvp(ν))`,
//!
//! together with the theoretical slope `N²/(N·log₂N)`. (`GPU*` = thread
//! pool; see DESIGN.md §3.) The paper's headline: different *algorithms*
//! give differently-sloped speedup curves, different *hardware* shifts a
//! curve in parallel, and `GPU-Pi(Fmmp)` reaches ≈ 2·10⁷ at ν = 25.
//! Reference times beyond the feasible range are extrapolated, exactly as
//! the paper does for ν ≥ 22.
//!
//! Usage: `fig4_speedup [--max-nu NU] [--quick]`

use qs_bench::{dump_json, model_n2, reference_speedup, time_median, Series};
use qs_landscape::Random;
use quasispecies::{solve, Engine, SolverConfig};
use serde::Serialize;

fn measure(
    label: &str,
    engine_of: impl Fn(u32) -> Engine,
    tol: f64,
    nus: impl Iterator<Item = u32>,
    reps: usize,
) -> Series {
    let mut s = Series::new(label);
    for nu in nus {
        let landscape = Random::new(nu, 5.0, 1.0, 1000 + nu as u64);
        let cfg = SolverConfig {
            engine: engine_of(nu),
            tol,
            ..Default::default()
        };
        let t = time_median(|| drop(solve(0.01, &landscape, &cfg).unwrap()), 0, reps);
        s.push_measured(nu, t);
        eprintln!("  {label}: ν = {nu} done");
    }
    s
}

#[derive(Serialize)]
struct Fig4Output {
    reference: Series,
    speedups: Vec<(String, Vec<(u32, f64)>)>,
}

fn main() {
    let (max_nu, quick) = qs_bench::harness_args(20);
    let reps = if quick { 1 } else { 3 };
    let ref_cap = if quick { 10 } else { 12 };
    let x5_cap = max_nu.min(if quick { 13 } else { 15 });

    println!("Figure 4 reproduction: speedups over CPU-Pi(Xmvp(ν)), ν = 10..={max_nu}");
    println!(
        "backend 'GPU*': thread pool with {} workers",
        rayon::current_num_threads()
    );

    // Serial quadratic reference (the denominator of every speedup).
    let mut reference = measure(
        "CPU-Pi(Xmvp(ν))",
        |nu| Engine::Xmvp { d_max: nu },
        1e-13,
        10..=ref_cap,
        reps,
    );
    reference.extrapolate(max_nu, model_n2);

    let combos: Vec<Series> = vec![
        measure(
            "GPU*-Pi(Fmmp)",
            |_| Engine::FmmpParallel,
            1e-13,
            10..=max_nu,
            reps,
        ),
        measure("CPU-Pi(Fmmp)", |_| Engine::Fmmp, 1e-13, 10..=max_nu, reps),
        {
            let mut s = measure(
                "GPU*-Pi(Xmvp(5))",
                |_| Engine::Xmvp { d_max: 5 },
                1e-10,
                10..=x5_cap,
                reps,
            );
            // NOTE: our Xmvp engine is serial either way; the "GPU" row for
            // Xmvp(5) in the paper parallelises the neighbour loops. We
            // report the serial measurement for both rows and mark the
            // difference in EXPERIMENTS.md.
            s.extrapolate(max_nu, |nu| {
                let n = (1u64 << nu) as f64;
                let ball: f64 = (0..=5u32.min(nu))
                    .map(|k| qs_bitseq::binomial_f64(nu, k))
                    .sum();
                n * ball
            });
            s
        },
    ];

    println!("\n== Figure 4: speedup to CPU-Pi(Xmvp(ν)) ==");
    print!("{:>4} {:>16}", "ν", "N²/(N·log₂N)");
    for c in &combos {
        print!(" {:>18}", c.label);
    }
    println!();
    let mut speedups: Vec<(String, Vec<(u32, f64)>)> = combos
        .iter()
        .map(|c| (c.label.clone(), Vec::new()))
        .collect();
    for nu in 10..=max_nu {
        let Some(t_ref) = reference.at(nu) else {
            continue;
        };
        print!("{nu:>4} {:>16.4e}", reference_speedup(nu));
        for (c, bucket) in combos.iter().zip(&mut speedups) {
            match c.at(nu) {
                Some(t) => {
                    let s = t_ref / t;
                    bucket.1.push((nu, s));
                    print!(" {:>18.4e}", s);
                }
                None => print!(" {:>18}", "-"),
            }
        }
        println!();
    }
    println!(
        "   (reference extrapolated beyond ν = {ref_cap} via N² fit, as in the paper for ν ≥ 22)"
    );

    // Shape check: the Fmmp speedup slope tracks N²/(N log N).
    if let (Some(lo), Some(hi)) = (
        speedups[0]
            .1
            .iter()
            .find(|&&(nu, _)| nu == 12)
            .map(|&(_, s)| s),
        speedups[0].1.last().map(|&(_, s)| s),
    ) {
        let nu_hi = speedups[0].1.last().unwrap().0;
        let measured_slope = (hi / lo).log2() / (nu_hi as f64 - 12.0);
        let theory_slope =
            (reference_speedup(nu_hi) / reference_speedup(12)).log2() / (nu_hi as f64 - 12.0);
        println!(
            "\nGPU*-Pi(Fmmp) speedup doubling rate: {measured_slope:.2} bits/ν (theory N/ν slope: {theory_slope:.2})"
        );
    }

    dump_json(
        "fig4_speedup",
        &Fig4Output {
            reference,
            speedups,
        },
    );
}
