//! Measure the telemetry tax: `solve()` vs `solve_probed(.., NullProbe)`
//! vs `solve_probed(.., RecordingProbe)` on the Figure-3 workload.
//!
//! The design claim (DESIGN.md, "Observability") is that a disabled probe
//! is *zero-cost*: the solver loops are generic over `P: Probe`, so the
//! `NullProbe` instantiation monomorphises to exactly the un-probed code —
//! no dynamic dispatch, no clock reads, no allocation in the hot loop.
//! This harness pins that down with wall-clock medians; the bit-for-bit
//! result equality is asserted by `qs-core`'s unit tests.
//!
//! Usage: `probe_overhead [--max-nu NU] [--quick]`

use qs_bench::time_median;
use qs_landscape::Random;
use qs_telemetry::{NullProbe, RecordingProbe};
use quasispecies::{solve, solve_probed, SolverConfig};

fn main() {
    let (max_nu, quick) = qs_bench::harness_args(14);
    let p = 0.01;
    let reps = if quick { 3 } else { 7 };

    println!("telemetry overhead: median of {reps} solves per variant, p = {p}");
    println!(
        "{:>4} {:>14} {:>14} {:>14} {:>10} {:>10}",
        "ν", "plain [s]", "null [s]", "recording [s]", "null tax", "rec tax"
    );
    for nu in (10..=max_nu).step_by(2) {
        let landscape = Random::new(nu, 5.0, 1.0, 1000 + nu as u64);
        let cfg = SolverConfig::default();
        let t_plain = time_median(|| drop(solve(p, &landscape, &cfg).unwrap()), 1, reps);
        let t_null = time_median(
            || drop(solve_probed(p, &landscape, &cfg, &mut NullProbe).unwrap()),
            1,
            reps,
        );
        let t_rec = time_median(
            || {
                let mut rec = RecordingProbe::new();
                drop(solve_probed(p, &landscape, &cfg, &mut rec).unwrap());
            },
            1,
            reps,
        );
        println!(
            "{nu:>4} {t_plain:>14.6} {t_null:>14.6} {t_rec:>14.6} {:>9.1}% {:>9.1}%",
            100.0 * (t_null / t_plain - 1.0),
            100.0 * (t_rec / t_plain - 1.0),
        );
    }
    println!("(null tax is run-to-run noise: both sides run identical machine code)");
}
