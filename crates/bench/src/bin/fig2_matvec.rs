//! Reproduce **paper Figure 2**: single-core runtimes of one implicit
//! matrix–vector product `W·x` for
//!
//! * `Xmvp(ν)` — the exact XOR-based product (≈ `Smvp`, `Θ(N²)`),
//! * `Xmvp(1)` — the coarsest sparsification (`Θ(N·(ν+1))`),
//! * `Fmmp`    — the paper's fast product (`Θ(N·log₂N)`, fully accurate),
//!
//! over chain lengths ν = 10…25. The headline of the figure: **Fmmp beats
//! even the lowest-accuracy approximation `Xmvp(1)` from small ν onward**
//! while being exact. Quadratic points beyond the time budget are
//! extrapolated by the complexity fit, as the paper does.
//!
//! Usage: `fig2_matvec [--max-nu NU] [--quick]`

use qs_bench::{dump_json, model_n2, model_nlogn, print_table, time_median, Series};
use qs_matvec::{fmmp::fmmp_in_place, LinearOperator, Xmvp};
use rand::{Rng, SeedableRng};

fn random_vec(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random::<f64>()).collect()
}

fn main() {
    let (max_nu, quick) = qs_bench::harness_args(24);
    let p = 0.01;
    // Measurement budgets per engine (seconds per product, roughly).
    let xmvp_full_cap: u32 = if quick { 11 } else { 13 };
    let xmvp1_cap: u32 = max_nu.min(if quick { 18 } else { 22 });
    let reps = if quick { 3 } else { 5 };

    println!("Figure 2 reproduction: single-core W·x runtimes, p = {p}, ν = 10..={max_nu}");

    let mut s_full = Series::new("Xmvp(ν) [~Smvp]");
    let mut s_one = Series::new("Xmvp(1)");
    let mut s_fmmp = Series::new("Fmmp");

    for nu in 10..=max_nu {
        let n = 1usize << nu;
        let x = random_vec(n, nu as u64);

        if nu <= xmvp_full_cap {
            let op = Xmvp::exact(nu, p);
            let mut y = vec![0.0; n];
            let t = time_median(|| op.apply_into(&x, &mut y), 1, reps);
            s_full.push_measured(nu, t);
        }
        if nu <= xmvp1_cap {
            let op = Xmvp::new(nu, p, 1);
            let mut y = vec![0.0; n];
            let t = time_median(|| op.apply_into(&x, &mut y), 1, reps);
            s_one.push_measured(nu, t);
        }
        {
            let mut v = x.clone();
            let t = time_median(|| fmmp_in_place(&mut v, p), 1, reps);
            s_fmmp.push_measured(nu, t);
        }
        eprintln!("  ν = {nu} done");
    }

    s_full.extrapolate(max_nu, model_n2);
    s_one.extrapolate(max_nu, |nu| (1u64 << nu) as f64 * (nu + 1) as f64);
    // Fmmp is always measured up to max_nu (it is cheap); no extrapolation.

    print_table(
        "Figure 2: implicit matvec runtimes [s] (single core)",
        &[s_full.clone(), s_one.clone(), s_fmmp.clone()],
    );

    // Shape checks the paper's figure conveys.
    if let (Some(t1), Some(tf)) = (s_one.at(max_nu), s_fmmp.at(max_nu)) {
        println!(
            "\nat ν = {max_nu}: Fmmp / Xmvp(1) = {:.2} (paper: Fmmp faster than even the coarsest approximation)",
            tf / t1
        );
    }
    if let (Some(tq), Some(tf)) = (s_full.at(max_nu), s_fmmp.at(max_nu)) {
        println!(
            "at ν = {max_nu}: Xmvp(ν) / Fmmp = {:.3e} (theoretical N/ν = {:.3e})",
            tq / tf,
            model_n2(max_nu) / model_nlogn(max_nu)
        );
    }

    dump_json("fig2_matvec", &vec![s_full, s_one, s_fmmp]);
}
