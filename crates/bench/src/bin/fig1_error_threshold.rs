//! Reproduce **paper Figure 1**: cumulative error-class concentrations
//! `[Γ_k]` versus the error rate `p` for ν = 20, on
//!
//! * (left)  the single-peak landscape `f₀ = 2, f_{i≠0} = 1` — the error
//!   threshold phenomenon with a sharp transition at `p_max ≈ 0.035`,
//! * (right) the linear landscape `f_i = f₀ − (f₀−f_ν)·d_H(i,0)/ν`
//!   (`f₀ = 2, f_ν = 1`) — a smooth transition, no threshold.
//!
//! Both panels are produced through the *exact* Section 5.1 reduction, so
//! each grid point costs `O(ν³)` regardless of `N = 2^20`.
//!
//! Usage: `fig1_error_threshold [--max-nu NU] [--quick]`

use qs_bench::dump_json;
use qs_landscape::ErrorClass;
use quasispecies::{detect_pmax, scan_error_classes, ThresholdScan};
use serde::Serialize;

#[derive(Serialize)]
struct Fig1Output {
    nu: u32,
    ps: Vec<f64>,
    single_peak: Vec<Vec<f64>>,
    linear: Vec<Vec<f64>>,
    p_max_single_peak: Option<f64>,
}

fn print_panel(title: &str, scan: &ThresholdScan, shown: &[u32]) {
    println!("\n-- {title} --");
    print!("{:>9}", "p");
    for &k in shown {
        print!(" {:>11}", format!("[Γ_{k}]"));
    }
    println!();
    for (i, &p) in scan.ps.iter().enumerate() {
        print!("{p:>9.4}");
        for &k in shown {
            print!(" {:>11.4e}", scan.classes[i][k as usize]);
        }
        println!();
    }
}

fn main() {
    let (nu, quick) = qs_bench::harness_args(20);
    let points = if quick { 19 } else { 46 };
    let ps: Vec<f64> = (1..=points)
        .map(|i| 0.002 * i as f64 * if quick { 2.4 } else { 1.0 })
        .map(|p| p.min(0.45))
        .collect();

    println!(
        "Figure 1 reproduction: ν = {nu}, {} error rates in [{:.3}, {:.3}]",
        ps.len(),
        ps[0],
        ps[ps.len() - 1]
    );

    let sp_phi = ErrorClass::single_peak(nu, 2.0, 1.0).phi().to_vec();
    let lin_phi = ErrorClass::linear(nu, 2.0, 1.0).phi().to_vec();

    let sp = scan_error_classes(nu, &sp_phi, &ps);
    let lin = scan_error_classes(nu, &lin_phi, &ps);

    // Show a readable subset of classes (the paper colours Γ_k with
    // Γ_{ν−k}; we print the low-k half plus the middle).
    let shown: Vec<u32> = (0..=nu.min(5)).chain([nu / 2, nu]).collect();
    print_panel(
        "left panel: single peak (f0 = 2, rest 1) — error threshold",
        &sp,
        &shown,
    );
    print_panel(
        "right panel: linear landscape (f0 = 2, fν = 1) — smooth transition",
        &lin,
        &shown,
    );

    let p_max = detect_pmax(nu, &sp_phi, 0.005, 0.1, 1e-3, 40);
    match p_max {
        Some(pm) => println!(
            "\nerror threshold (single peak): p_max ≈ {pm:.4}   [paper: ≈ 0.035 for ν = 20]"
        ),
        None => println!("\nerror threshold not bracketed (unexpected for the single peak)"),
    }
    println!(
        "linear landscape: max single-step order-parameter drop {:.3} of total (no sharp knee)",
        {
            let o = &lin.order;
            let total = (o[0] - o[o.len() - 1]).max(1e-300);
            o.windows(2).map(|w| w[0] - w[1]).fold(0.0f64, f64::max) / total
        }
    );

    dump_json(
        "fig1_error_threshold",
        &Fig1Output {
            nu,
            ps,
            single_peak: sp.classes,
            linear: lin.classes,
            p_max_single_peak: p_max,
        },
    );
}
