//! Shared harness utilities for regenerating the paper's figures.
//!
//! The paper's evaluation consists of Figures 1–4; each has a dedicated
//! binary in `src/bin/` that prints the same rows/series the paper plots.
//! Because the `Θ(N²)` baselines become infeasible quickly, the harness
//! mirrors the paper's own methodology: measure the baseline as far as the
//! budget allows, then extrapolate it with a least-squares complexity fit
//! ("for ν ≥ 22 the execution times for Pi(Xmvp(ν)) … had to be
//! extrapolated", Section 4). Extrapolated points are explicitly marked.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::Serialize;
use std::time::Instant;

/// Wall-clock a closure: median of `reps` runs after `warmup` runs.
pub fn time_median<F: FnMut()>(mut f: F, warmup: usize, reps: usize) -> f64 {
    assert!(reps >= 1, "at least one timed repetition required");
    for _ in 0..warmup {
        f();
    }
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// One measured (or extrapolated) series point.
#[derive(Debug, Clone, Serialize)]
pub struct SeriesPoint {
    /// Chain length ν.
    pub nu: u32,
    /// Seconds.
    pub seconds: f64,
    /// Whether the point was measured (`false` ⇒ extrapolated by the
    /// complexity fit, as the paper does for infeasible baseline sizes).
    pub measured: bool,
}

/// A named runtime series over chain lengths.
#[derive(Debug, Clone, Serialize)]
pub struct Series {
    /// Legend label (paper notation, e.g. `"Pi(Xmvp(ν))"`).
    pub label: String,
    /// The points.
    pub points: Vec<SeriesPoint>,
}

impl Series {
    /// New empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Append a measured point.
    pub fn push_measured(&mut self, nu: u32, seconds: f64) {
        self.points.push(SeriesPoint {
            nu,
            seconds,
            measured: true,
        });
    }

    /// Seconds at ν, if present.
    pub fn at(&self, nu: u32) -> Option<f64> {
        self.points.iter().find(|p| p.nu == nu).map(|p| p.seconds)
    }

    /// Extend the series to `max_nu` by least-squares fitting
    /// `t(ν) = c·model(ν)` on the measured points and evaluating the fit
    /// beyond them (the paper's extrapolation procedure for `Xmvp(ν)` at
    /// ν ≥ 22).
    ///
    /// # Panics
    ///
    /// Panics if the series has no measured points.
    pub fn extrapolate(&mut self, max_nu: u32, model: impl Fn(u32) -> f64) {
        assert!(
            self.points.iter().any(|p| p.measured),
            "cannot extrapolate an empty series"
        );
        // Least squares for t = c·m: c = Σ t·m / Σ m².
        let (mut num, mut den) = (0.0f64, 0.0f64);
        for p in self.points.iter().filter(|p| p.measured) {
            let m = model(p.nu);
            num += p.seconds * m;
            den += m * m;
        }
        let c = num / den;
        let start = self.points.iter().map(|p| p.nu).max().unwrap() + 1;
        for nu in start..=max_nu {
            self.points.push(SeriesPoint {
                nu,
                seconds: c * model(nu),
                measured: false,
            });
        }
    }
}

/// The `Θ(N²)` cost model (per application), used for `Smvp`/`Xmvp(ν)`.
pub fn model_n2(nu: u32) -> f64 {
    let n = (1u64 << nu) as f64;
    n * n
}

/// The `Θ(N log₂ N)` cost model, used for `Fmmp`.
pub fn model_nlogn(nu: u32) -> f64 {
    let n = (1u64 << nu) as f64;
    n * nu as f64
}

/// The paper's reference speedup slope `N²/(N·log₂N)`.
pub fn reference_speedup(nu: u32) -> f64 {
    model_n2(nu) / model_nlogn(nu)
}

/// Print a runtime table: one row per ν, one column per series, `*`
/// marking extrapolated values.
pub fn print_table(title: &str, series: &[Series]) {
    println!("\n== {title} ==");
    let nus: Vec<u32> = {
        let mut all: Vec<u32> = series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.nu))
            .collect();
        all.sort_unstable();
        all.dedup();
        all
    };
    print!("{:>4}", "ν");
    for s in series {
        print!(" {:>18}", s.label);
    }
    println!();
    for &nu in &nus {
        print!("{nu:>4}");
        for s in series {
            match s.points.iter().find(|p| p.nu == nu) {
                Some(p) => {
                    let mark = if p.measured { ' ' } else { '*' };
                    print!(" {:>17.5e}{mark}", p.seconds);
                }
                None => print!(" {:>18}", "-"),
            }
        }
        println!();
    }
    println!("   (* = extrapolated via complexity fit, as in the paper for infeasible sizes)");
}

/// Write the series to `bench_results/<name>.json` for EXPERIMENTS.md.
pub fn dump_json(name: &str, value: &impl Serialize) {
    let dir = std::path::Path::new("bench_results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(format!("{name}.json"));
        match serde_json::to_string_pretty(value) {
            Ok(json) => {
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("warning: could not write {}: {e}", path.display());
                } else {
                    println!("   (raw data → {})", path.display());
                }
            }
            Err(e) => eprintln!("warning: serialisation failed: {e}"),
        }
    }
}

/// Write a recorded solver event stream to
/// `bench_results/<name>.trace.jsonl` (one JSON object per line, the same
/// schema the CLI's `--trace` emits), for post-hoc convergence analysis.
pub fn dump_trace_jsonl(name: &str, events: &[qs_telemetry::SolverEvent]) {
    let dir = std::path::Path::new("bench_results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(format!("{name}.trace.jsonl"));
        let mut text = String::new();
        for event in events {
            text.push_str(&event.to_json_line());
            text.push('\n');
        }
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("   (trace → {}, {} events)", path.display(), events.len());
        }
    }
}

/// Parse `--max-nu N` / `--quick` style harness arguments shared by the
/// figure binaries. Returns (max_nu, quick).
pub fn harness_args(default_max_nu: u32) -> (u32, bool) {
    let args: Vec<String> = std::env::args().collect();
    let mut max_nu = default_max_nu;
    let mut quick = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--max-nu" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    max_nu = v;
                }
                i += 2;
            }
            "--quick" => {
                quick = true;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (max_nu, quick)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extrapolation_follows_the_model() {
        let mut s = Series::new("test");
        // Perfectly quadratic data: t = 3·N².
        for nu in 4..=8u32 {
            s.push_measured(nu, 3.0 * model_n2(nu));
        }
        s.extrapolate(12, model_n2);
        for nu in 9..=12u32 {
            let got = s.at(nu).unwrap();
            let want = 3.0 * model_n2(nu);
            assert!((got - want).abs() < 1e-9 * want);
            assert!(!s.points.iter().find(|p| p.nu == nu).unwrap().measured);
        }
    }

    #[test]
    fn reference_speedup_shape() {
        // N²/(N log₂N) = N/ν: doubles-ish per ν step.
        let r20 = reference_speedup(20);
        assert!((r20 - (1u64 << 20) as f64 / 20.0).abs() < 1e-9);
        assert!(reference_speedup(25) > reference_speedup(20));
    }

    #[test]
    fn time_median_is_positive() {
        let t = time_median(
            || {
                std::hint::black_box((0..1000).sum::<u64>());
            },
            1,
            3,
        );
        assert!(t >= 0.0);
    }

    #[test]
    fn series_lookup() {
        let mut s = Series::new("x");
        s.push_measured(10, 1.5);
        assert_eq!(s.at(10), Some(1.5));
        assert_eq!(s.at(11), None);
    }
}
