//! Implicit-shift QL eigensolver for symmetric tridiagonal matrices.
//!
//! Post-processing step for the Lanczos comparator (paper Section 3 names
//! Lanczos/Arnoldi as the alternative to power iteration): the Lanczos
//! process produces a small tridiagonal `T_m`; its eigenpairs give Ritz
//! values/vectors of the big operator.

use crate::dense::DenseMatrix;

/// Eigendecomposition of a symmetric tridiagonal matrix.
#[derive(Debug, Clone)]
pub struct TridiagEigen {
    /// Eigenvalues in descending order.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors; column `j` corresponds to `values[j]`.
    pub vectors: DenseMatrix,
}

/// Eigenpairs of the symmetric tridiagonal matrix with diagonal `d` and
/// off-diagonal `e` (`e.len() == d.len() - 1`), by the implicit-shift QL
/// algorithm with Wilkinson shifts.
///
/// # Panics
///
/// Panics on length mismatch, on empty input, or if an eigenvalue fails to
/// converge in 50 iterations (practically unreachable for Lanczos output).
pub fn tridiag_eigen(d: &[f64], e: &[f64]) -> TridiagEigen {
    let n = d.len();
    assert!(n > 0, "tridiag_eigen: empty matrix");
    assert_eq!(
        e.len(),
        n.saturating_sub(1),
        "tridiag_eigen: off-diagonal length"
    );

    let mut dd = d.to_vec();
    // Work array of off-diagonals with a trailing zero slot.
    let mut ee = vec![0.0; n];
    ee[..n - 1].copy_from_slice(e);
    let mut z = DenseMatrix::identity(n);

    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find the first negligible off-diagonal at or after l.
            let mut m = l;
            while m + 1 < n {
                let scale = dd[m].abs() + dd[m + 1].abs();
                if ee[m].abs() <= f64::EPSILON * scale {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            assert!(iter <= 50, "tridiag_eigen: QL failed to converge");
            // Wilkinson shift.
            let mut g = (dd[l + 1] - dd[l]) / (2.0 * ee[l]);
            let mut r = g.hypot(1.0);
            g = dd[m] - dd[l] + ee[l] / (g + r.copysign(g));
            let (mut s, mut c) = (1.0f64, 1.0f64);
            let mut p = 0.0f64;
            for i in (l..m).rev() {
                let mut f = s * ee[i];
                let b = c * ee[i];
                r = f.hypot(g);
                ee[i + 1] = r;
                if r == 0.0 {
                    dd[i + 1] -= p;
                    ee[m] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                g = dd[i + 1] - p;
                r = (dd[i] - g) * s + 2.0 * c * b;
                p = s * r;
                dd[i + 1] = g + p;
                g = c * r - b;
                // Accumulate the rotation into the eigenvector matrix.
                for k in 0..n {
                    f = z[(k, i + 1)];
                    z[(k, i + 1)] = s * z[(k, i)] + c * f;
                    z[(k, i)] = c * z[(k, i)] - s * f;
                }
            }
            if r == 0.0 && m > l + 1 {
                continue;
            }
            dd[l] -= p;
            ee[l] = g;
            ee[m] = 0.0;
        }
    }

    // Sort eigenpairs descending.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| dd[j].total_cmp(&dd[i]));
    let values: Vec<f64> = order.iter().map(|&j| dd[j]).collect();
    let vectors = DenseMatrix::from_fn(n, n, |i, j| z[(i, order[j])]);
    TridiagEigen { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_dense(d: &[f64], e: &[f64]) -> DenseMatrix {
        let n = d.len();
        let mut a = DenseMatrix::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = d[i];
            if i + 1 < n {
                a[(i, i + 1)] = e[i];
                a[(i + 1, i)] = e[i];
            }
        }
        a
    }

    fn check(d: &[f64], e: &[f64], tol: f64) -> TridiagEigen {
        let a = build_dense(d, e);
        let eig = tridiag_eigen(d, e);
        let n = d.len();
        for j in 0..n {
            let vj: Vec<f64> = (0..n).map(|i| eig.vectors[(i, j)]).collect();
            let av = a.matvec(&vj);
            for i in 0..n {
                assert!(
                    (av[i] - eig.values[j] * vj[i]).abs() < tol,
                    "residual of pair {j} too large"
                );
            }
        }
        let vtv = eig.vectors.transpose().matmul(&eig.vectors);
        assert!(vtv.max_abs_diff(&DenseMatrix::identity(n)) < tol);
        eig
    }

    #[test]
    fn one_by_one() {
        let eig = tridiag_eigen(&[7.0], &[]);
        assert_eq!(eig.values, vec![7.0]);
    }

    #[test]
    fn two_by_two_known() {
        // [[0,1],[1,0]] has eigenvalues ±1.
        let eig = check(&[0.0, 0.0], &[1.0], 1e-13);
        assert!((eig.values[0] - 1.0).abs() < 1e-14);
        assert!((eig.values[1] + 1.0).abs() < 1e-14);
    }

    #[test]
    fn laplacian_eigenvalues_are_analytic() {
        // The discrete 1-D Laplacian tridiag(-1, 2, -1) of order n has
        // eigenvalues 2 - 2 cos(kπ/(n+1)).
        let n = 12;
        let d = vec![2.0; n];
        let e = vec![-1.0; n - 1];
        let eig = check(&d, &e, 1e-12);
        let mut expected: Vec<f64> = (1..=n)
            .map(|k| 2.0 - 2.0 * (k as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos())
            .collect();
        expected.sort_by(|a, b| b.total_cmp(a));
        for (got, want) in eig.values.iter().zip(&expected) {
            assert!((got - want).abs() < 1e-12, "{got} vs {want}");
        }
    }

    #[test]
    fn agrees_with_jacobi() {
        let d = [1.0, -2.0, 0.5, 3.0, 0.0];
        let e = [0.7, -0.3, 1.1, 0.2];
        let eig = check(&d, &e, 1e-12);
        let dense = build_dense(&d, &e);
        let jac = crate::jacobi::jacobi_eigen(&dense);
        for (a, b) in eig.values.iter().zip(&jac.values) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "off-diagonal length")]
    fn rejects_bad_lengths() {
        let _ = tridiag_eigen(&[1.0, 2.0], &[1.0, 2.0]);
    }
}
