//! Cyclic Jacobi eigensolver for small symmetric matrices.
//!
//! The Section 5.1 reduction produces a `(ν+1)×(ν+1)` problem whose
//! symmetrised form is solved here "by a standard solver", exactly as the
//! paper prescribes; Section 5.2's Kronecker factor problems are equally
//! small. Jacobi is slow (`O(n³)` per sweep) but delivers full accuracy and
//! orthonormal eigenvectors, which is what the verification work needs.

use crate::dense::DenseMatrix;

/// Eigendecomposition of a symmetric matrix: `A = V·diag(λ)·Vᵀ`.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues in descending order.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors; column `j` (i.e. `vectors[(i, j)]` over `i`)
    /// corresponds to `values[j]`.
    pub vectors: DenseMatrix,
}

/// Compute all eigenpairs of a symmetric matrix by the cyclic Jacobi method.
///
/// Sweeps until the off-diagonal Frobenius norm falls below
/// `1e-14 · ‖A‖_F` or 50 sweeps have run (far more than needed: Jacobi
/// converges quadratically once sorted).
///
/// # Panics
///
/// Panics if `a` is not square or not symmetric to `1e-10 · ‖A‖_F`.
pub fn jacobi_eigen(a: &DenseMatrix) -> SymmetricEigen {
    assert_eq!(a.rows(), a.cols(), "jacobi_eigen requires a square matrix");
    let scale = a.frobenius().max(f64::MIN_POSITIVE);
    assert!(
        a.is_symmetric(1e-10 * scale),
        "jacobi_eigen requires a symmetric matrix"
    );
    let n = a.rows();
    let mut m = a.clone();
    let mut v = DenseMatrix::identity(n);

    let off = |m: &DenseMatrix| -> f64 {
        let mut s = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                s += 2.0 * m[(i, j)] * m[(i, j)];
            }
        }
        s.sqrt()
    };

    let tol = 1e-14 * scale;
    for _sweep in 0..50 {
        if off(&m) <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= tol / (n as f64) {
                    continue;
                }
                // Classical Jacobi rotation annihilating (p,q).
                let theta = (m[(q, q)] - m[(p, p)]) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    // Sort eigenpairs descending by eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| m[(j, j)].total_cmp(&m[(i, i)]));
    let values: Vec<f64> = order.iter().map(|&j| m[(j, j)]).collect();
    let vectors = DenseMatrix::from_fn(n, n, |i, j| v[(i, order[j])]);
    SymmetricEigen { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_decomposition(a: &DenseMatrix, eig: &SymmetricEigen, tol: f64) {
        let n = a.rows();
        // A·v_j = λ_j·v_j for every column.
        for j in 0..n {
            let vj: Vec<f64> = (0..n).map(|i| eig.vectors[(i, j)]).collect();
            let av = a.matvec(&vj);
            for i in 0..n {
                assert!(
                    (av[i] - eig.values[j] * vj[i]).abs() < tol,
                    "eigenpair {j} residual too large"
                );
            }
        }
        // Orthonormality.
        let vtv = eig.vectors.transpose().matmul(&eig.vectors);
        assert!(vtv.max_abs_diff(&DenseMatrix::identity(n)) < tol);
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let a = DenseMatrix::diagonal(&[3.0, 1.0, 2.0]);
        let eig = jacobi_eigen(&a);
        assert_eq!(eig.values, vec![3.0, 2.0, 1.0]);
        check_decomposition(&a, &eig, 1e-12);
    }

    #[test]
    fn two_by_two_known_eigenvalues() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = DenseMatrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let eig = jacobi_eigen(&a);
        assert!((eig.values[0] - 3.0).abs() < 1e-13);
        assert!((eig.values[1] - 1.0).abs() < 1e-13);
        check_decomposition(&a, &eig, 1e-12);
    }

    #[test]
    fn mutation_factor_eigenvalues() {
        // The single-site mutation matrix [[1-p, p], [p, 1-p]] has
        // eigenvalues 1 and 1-2p — the building block of the paper's Λ(ν).
        let p = 0.07;
        let a = DenseMatrix::from_vec(2, 2, vec![1.0 - p, p, p, 1.0 - p]);
        let eig = jacobi_eigen(&a);
        assert!((eig.values[0] - 1.0).abs() < 1e-14);
        assert!((eig.values[1] - (1.0 - 2.0 * p)).abs() < 1e-14);
    }

    #[test]
    fn random_symmetric_matrix() {
        let n = 10;
        let mut state = 42u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut a = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let v = next();
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        let eig = jacobi_eigen(&a);
        check_decomposition(&a, &eig, 1e-11);
        // Trace equals sum of eigenvalues.
        let trace: f64 = (0..n).map(|i| a[(i, i)]).sum();
        let lam_sum: f64 = eig.values.iter().sum();
        assert!((trace - lam_sum).abs() < 1e-11);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn rejects_asymmetric_input() {
        let a = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let _ = jacobi_eigen(&a);
    }
}
