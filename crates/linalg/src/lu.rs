//! LU factorisation with partial pivoting.
//!
//! Used as a direct-solve oracle: the FWHT-based shift-and-invert product
//! `(Q − µI)^{-1} v` (paper Section 3) is verified against `Lu::solve` on
//! small instances, and the ODE cross-check uses it for implicit steps.

use crate::dense::DenseMatrix;

/// An LU factorisation `P·A = L·U` of a square matrix.
#[derive(Debug, Clone)]
pub struct Lu {
    /// Packed L (unit lower, implicit diagonal) and U factors.
    lu: DenseMatrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (for determinants).
    sign: f64,
}

/// Error returned when the matrix is singular to working precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingularMatrix;

impl std::fmt::Display for SingularMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is singular to working precision")
    }
}

impl std::error::Error for SingularMatrix {}

impl Lu {
    /// Factorise a square matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrix`] if a pivot column is exactly zero.
    pub fn new(a: &DenseMatrix) -> Result<Self, SingularMatrix> {
        assert_eq!(a.rows(), a.cols(), "LU requires a square matrix");
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        for k in 0..n {
            // Partial pivoting: largest magnitude in column k at/below row k.
            let mut piv = k;
            let mut best = lu[(k, k)].abs();
            for i in (k + 1)..n {
                if lu[(i, k)].abs() > best {
                    best = lu[(i, k)].abs();
                    piv = i;
                }
            }
            if best == 0.0 {
                return Err(SingularMatrix);
            }
            if piv != k {
                for j in 0..n {
                    let t = lu[(k, j)];
                    lu[(k, j)] = lu[(piv, j)];
                    lu[(piv, j)] = t;
                }
                perm.swap(k, piv);
                sign = -sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let m = lu[(i, k)] / pivot;
                lu[(i, k)] = m;
                for j in (k + 1)..n {
                    let delta = m * lu[(k, j)];
                    lu[(i, j)] -= delta;
                }
            }
        }
        Ok(Lu { lu, perm, sign })
    }

    /// Order of the factored matrix.
    pub fn order(&self) -> usize {
        self.lu.rows()
    }

    /// Solve `A·x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the matrix order.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.order();
        assert_eq!(b.len(), n, "solve: rhs length mismatch");
        // Apply permutation, then forward/backward substitution.
        let mut x: Vec<f64> = self.perm.iter().map(|&pi| b[pi]).collect();
        for i in 1..n {
            let mut s = x[i];
            for (j, &xj) in x.iter().enumerate().take(i) {
                s -= self.lu[(i, j)] * xj;
            }
            x[i] = s;
        }
        for i in (0..n).rev() {
            let mut s = x[i];
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                s -= self.lu[(i, j)] * xj;
            }
            x[i] = s / self.lu[(i, i)];
        }
        x
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.order() {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Explicit inverse (column-by-column solve); for small test matrices.
    pub fn inverse(&self) -> DenseMatrix {
        let n = self.order();
        let mut inv = DenseMatrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e);
            e[j] = 0.0;
            for (i, &v) in col.iter().enumerate() {
                inv[(i, j)] = v;
            }
        }
        inv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &DenseMatrix, x: &[f64], b: &[f64]) -> f64 {
        let ax = a.matvec(x);
        ax.iter()
            .zip(b)
            .fold(0.0f64, |m, (&u, &v)| m.max((u - v).abs()))
    }

    #[test]
    fn solves_small_system() {
        let a = DenseMatrix::from_vec(2, 2, vec![4.0, 3.0, 6.0, 3.0]);
        let lu = Lu::new(&a).unwrap();
        let x = lu.solve(&[10.0, 12.0]);
        assert!(residual(&a, &x, &[10.0, 12.0]) < 1e-12);
        assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = DenseMatrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let lu = Lu::new(&a).unwrap();
        let x = lu.solve(&[3.0, 7.0]);
        assert_eq!(x, vec![7.0, 3.0]);
        assert!((lu.det() + 1.0).abs() < 1e-15);
    }

    #[test]
    fn detects_singularity() {
        let a = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert_eq!(Lu::new(&a).unwrap_err(), SingularMatrix);
    }

    #[test]
    fn determinant_of_diagonal() {
        let a = DenseMatrix::diagonal(&[2.0, 3.0, 4.0]);
        assert!((Lu::new(&a).unwrap().det() - 24.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_round_trip() {
        let a = DenseMatrix::from_vec(3, 3, vec![2.0, 1.0, 0.0, 1.0, 3.0, 1.0, 0.0, 1.0, 2.0]);
        let inv = Lu::new(&a).unwrap().inverse();
        let prod = a.matmul(&inv);
        assert!(prod.max_abs_diff(&DenseMatrix::identity(3)) < 1e-12);
    }

    #[test]
    fn random_well_conditioned_system() {
        // Diagonally dominant pseudo-random matrix; deterministic LCG.
        let n = 12;
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut a = DenseMatrix::from_fn(n, n, |_, _| next() - 0.5);
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        let b: Vec<f64> = (0..n).map(|i| i as f64 - 3.0).collect();
        let x = Lu::new(&a).unwrap().solve(&b);
        assert!(residual(&a, &x, &b) < 1e-10);
    }
}
