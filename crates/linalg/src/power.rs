//! Dominant eigenpairs of small dense matrices by power iteration.
//!
//! This is the *dense* power iteration used on the reduced problems of paper
//! Sections 5.1/5.2 (matrices of order `ν+1` or `2^{g_i}`), not the
//! large-scale matrix-free iteration — that lives in the `quasispecies`
//! crate and works on implicit operators.

use crate::dense::DenseMatrix;
use crate::norms::norm_l2;
use crate::sum::dot;
use crate::vec_ops::{normalize_l2, orient_positive, sub_scaled_into};

/// Result of a dense dominant-eigenpair computation.
#[derive(Debug, Clone)]
pub struct DominantEigen {
    /// The dominant eigenvalue `λ₀`.
    pub value: f64,
    /// Unit-L2 eigenvector, oriented so its largest entry is positive.
    pub vector: Vec<f64>,
    /// Final residual `‖A·x − λ·x‖₂`.
    pub residual: f64,
    /// Number of iterations performed.
    pub iterations: usize,
}

/// Compute the dominant eigenpair of a square matrix by power iteration.
///
/// `start` seeds the iteration (uniform vector if `None`). Stops when the
/// residual `‖A·x − λ·x‖₂` drops below `tol` or after `max_iter` steps.
///
/// # Panics
///
/// Panics if the matrix is not square, if `start` has the wrong length, or
/// if the iterate collapses to zero (defective start).
pub fn dominant_eigenpair(
    a: &DenseMatrix,
    start: Option<&[f64]>,
    tol: f64,
    max_iter: usize,
) -> DominantEigen {
    assert_eq!(
        a.rows(),
        a.cols(),
        "dominant_eigenpair: square matrix required"
    );
    let n = a.rows();
    let mut x = match start {
        Some(s) => {
            assert_eq!(s.len(), n, "dominant_eigenpair: start length mismatch");
            s.to_vec()
        }
        None => vec![1.0; n],
    };
    assert!(
        normalize_l2(&mut x) > 0.0,
        "dominant_eigenpair: zero start vector"
    );

    let mut y = vec![0.0; n];
    let mut r = vec![0.0; n];
    let mut lambda = 0.0;
    let mut residual = f64::INFINITY;
    let mut iterations = 0;
    for it in 1..=max_iter {
        iterations = it;
        a.matvec_into(&x, &mut y);
        // Rayleigh quotient (x is unit length).
        lambda = dot(&x, &y);
        sub_scaled_into(&y, lambda, &x, &mut r);
        residual = norm_l2(&r);
        let ny = norm_l2(&y);
        assert!(ny > 0.0, "dominant_eigenpair: iterate collapsed to zero");
        for (xi, &yi) in x.iter_mut().zip(&y) {
            *xi = yi / ny;
        }
        if residual <= tol {
            break;
        }
    }
    orient_positive(&mut x);
    DominantEigen {
        value: lambda,
        vector: x,
        residual,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_dominant_pair() {
        let a = DenseMatrix::diagonal(&[1.0, 5.0, 3.0]);
        // Start away from the axis so the dominant direction is reachable.
        let eig = dominant_eigenpair(&a, Some(&[1.0, 1.0, 1.0]), 1e-14, 10_000);
        assert!((eig.value - 5.0).abs() < 1e-10);
        assert!((eig.vector[1].abs() - 1.0).abs() < 1e-6);
        assert!(eig.residual < 1e-14);
    }

    #[test]
    fn symmetric_known_matrix() {
        let a = DenseMatrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let eig = dominant_eigenpair(&a, None, 1e-14, 10_000);
        assert!((eig.value - 3.0).abs() < 1e-12);
        let s = std::f64::consts::FRAC_1_SQRT_2;
        assert!((eig.vector[0] - s).abs() < 1e-7);
        assert!((eig.vector[1] - s).abs() < 1e-7);
    }

    #[test]
    fn positive_matrix_gives_positive_perron_vector() {
        let a = DenseMatrix::from_vec(3, 3, vec![1.0, 0.2, 0.1, 0.3, 1.5, 0.2, 0.1, 0.4, 0.8]);
        let eig = dominant_eigenpair(&a, None, 1e-13, 100_000);
        assert!(
            eig.vector.iter().all(|&v| v > 0.0),
            "Perron vector must be positive"
        );
        assert!(eig.residual < 1e-13);
    }

    #[test]
    fn iteration_count_reported() {
        let a = DenseMatrix::diagonal(&[1.0, 2.0]);
        let eig = dominant_eigenpair(&a, Some(&[1.0, 1.0]), 1e-12, 500);
        assert!(eig.iterations > 1 && eig.iterations <= 500);
    }

    #[test]
    fn respects_max_iter_budget() {
        let a = DenseMatrix::from_vec(2, 2, vec![1.0, 1e-9, 1e-9, 1.0]);
        // Degenerate spectrum: cannot converge; must stop at the budget.
        let eig = dominant_eigenpair(&a, Some(&[1.0, 0.5]), 0.0, 17);
        assert_eq!(eig.iterations, 17);
    }
}
