//! Row-major dense matrices.
//!
//! Used for three things in this workspace: (a) materialising small problem
//! instances to verify every implicit operator against, (b) the paper's
//! `Smvp` standard matrix–vector product baseline, and (c) the small dense
//! eigenproblems produced by the Section 5.1/5.2 reductions.

use crate::sum::NeumaierSum;

/// A row-major dense `rows × cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Zero matrix of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or the element count overflows.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        let len = rows.checked_mul(cols).expect("matrix too large");
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; len],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build a matrix from a function of the index pair.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Build from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        DenseMatrix { rows, cols, data }
    }

    /// Diagonal matrix from a slice.
    pub fn diagonal(d: &[f64]) -> Self {
        let mut m = Self::zeros(d.len(), d.len());
        for (i, &v) in d.iter().enumerate() {
            m[(i, i)] = v;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow the row-major backing storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// `y = A·x` into a fresh vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y);
        y
    }

    /// `y ← A·x` into a caller-provided buffer (compensated row sums).
    ///
    /// # Panics
    ///
    /// Panics on any shape mismatch.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec: x length mismatch");
        assert_eq!(y.len(), self.rows, "matvec: y length mismatch");
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = NeumaierSum::new();
            for (aij, &xj) in self.row(i).iter().zip(x) {
                acc.add(aij * xj);
            }
            *yi = acc.value();
        }
    }

    /// `xᵀ·A` (left product), returned as a fresh vector of length `cols`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`.
    pub fn vecmat(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "vecmat: x length mismatch");
        let mut y = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            for (yj, &aij) in y.iter_mut().zip(self.row(i)) {
                *yj += xi * aij;
            }
        }
        y
    }

    /// Matrix product `A·B`.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions mismatch.
    pub fn matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, other.rows, "matmul: inner dimension mismatch");
        let mut out = DenseMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += aik * other[(k, j)];
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> DenseMatrix {
        DenseMatrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Kronecker product `A ⊗ B`.
    ///
    /// Ordering convention matches the paper's Eq. 7/8: the *left* factor
    /// addresses the most significant block index.
    pub fn kron(&self, other: &DenseMatrix) -> DenseMatrix {
        let (ar, ac, br, bc) = (self.rows, self.cols, other.rows, other.cols);
        let mut out = DenseMatrix::zeros(ar * br, ac * bc);
        for i in 0..ar {
            for j in 0..ac {
                let aij = self[(i, j)];
                if aij == 0.0 {
                    continue;
                }
                for k in 0..br {
                    for l in 0..bc {
                        out[(i * br + k, j * bc + l)] = aij * other[(k, l)];
                    }
                }
            }
        }
        out
    }

    /// Column sums (a matrix is column stochastic iff these are all 1 and
    /// entries are non-negative).
    pub fn column_sums(&self) -> Vec<f64> {
        let mut sums = vec![NeumaierSum::new(); self.cols];
        for i in 0..self.rows {
            for (s, &v) in sums.iter_mut().zip(self.row(i)) {
                s.add(v);
            }
        }
        sums.iter().map(NeumaierSum::value).collect()
    }

    /// Is the matrix symmetric to absolute tolerance `tol`?
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Maximum absolute entry difference to another matrix of the same shape.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> f64 {
        assert_eq!(self.rows, other.rows, "shape mismatch");
        assert_eq!(self.cols, other.cols, "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .fold(0.0f64, |m, (&a, &b)| m.max((a - b).abs()))
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f64 {
        crate::norms::norm_l2(&self.data)
    }

    /// Scale every entry in place.
    pub fn scale(&mut self, a: f64) {
        for v in &mut self.data {
            *v *= a;
        }
    }
}

impl std::ops::Index<(usize, usize)> for DenseMatrix {
    type Output = f64;

    #[inline(always)]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DenseMatrix {
    #[inline(always)]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matvec_is_identity() {
        let i4 = DenseMatrix::identity(4);
        let x = vec![1.0, -2.0, 3.0, 0.5];
        assert_eq!(i4.matvec(&x), x);
    }

    #[test]
    fn matvec_known_values() {
        let a = DenseMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.matvec(&[1.0, 1.0, 1.0]), vec![6.0, 15.0]);
    }

    #[test]
    fn vecmat_is_transpose_matvec() {
        let a = DenseMatrix::from_fn(3, 4, |i, j| (i * 4 + j) as f64);
        let x = [1.0, -1.0, 2.0];
        assert_eq!(a.vecmat(&x), a.transpose().matvec(&x));
    }

    #[test]
    fn matmul_against_hand_computation() {
        let a = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = DenseMatrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn kron_shape_and_values() {
        let a = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = DenseMatrix::identity(2);
        let k = a.kron(&b);
        assert_eq!((k.rows(), k.cols()), (4, 4));
        // Block (0,1) = 2·I.
        assert_eq!(k[(0, 2)], 2.0);
        assert_eq!(k[(1, 3)], 2.0);
        assert_eq!(k[(0, 3)], 0.0);
    }

    #[test]
    fn kron_mixed_product_property() {
        // (A⊗B)(C⊗D) = AC ⊗ BD — the identity Section 5.2 relies on.
        let a = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 0.0, 1.0]);
        let b = DenseMatrix::from_vec(2, 2, vec![0.5, 0.1, 0.2, 0.9]);
        let c = DenseMatrix::from_vec(2, 2, vec![2.0, 0.0, 1.0, 1.0]);
        let d = DenseMatrix::from_vec(2, 2, vec![1.0, 3.0, 0.0, 2.0]);
        let lhs = a.kron(&b).matmul(&c.kron(&d));
        let rhs = a.matmul(&c).kron(&b.matmul(&d));
        assert!(lhs.max_abs_diff(&rhs) < 1e-14);
    }

    #[test]
    fn column_sums_of_stochastic_matrix() {
        let p = 0.05;
        let m = DenseMatrix::from_vec(2, 2, vec![1.0 - p, p, p, 1.0 - p]);
        let sums = m.column_sums();
        assert!((sums[0] - 1.0).abs() < 1e-15);
        assert!((sums[1] - 1.0).abs() < 1e-15);
    }

    #[test]
    fn symmetry_check() {
        let s = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 5.0]);
        assert!(s.is_symmetric(0.0));
        let a = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 5.0]);
        assert!(!a.is_symmetric(0.5));
        let rect = DenseMatrix::zeros(2, 3);
        assert!(!rect.is_symmetric(1.0));
    }

    #[test]
    fn diagonal_constructor() {
        let d = DenseMatrix::diagonal(&[1.0, 2.0, 3.0]);
        assert_eq!(d.matvec(&[1.0, 1.0, 1.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "x length mismatch")]
    fn matvec_rejects_bad_shape() {
        let _ = DenseMatrix::identity(3).matvec(&[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_empty_matrix() {
        let _ = DenseMatrix::zeros(0, 3);
    }
}
