//! Vector norms with compensated accumulation.

use crate::sum::NeumaierSum;

/// L1 norm `Σ |x_i|`.
pub fn norm_l1(x: &[f64]) -> f64 {
    let mut acc = NeumaierSum::new();
    for &v in x {
        acc.add(v.abs());
    }
    acc.value()
}

/// L2 norm `√(Σ x_i²)`, with rescaling by the max element to avoid
/// overflow/underflow of the squares.
pub fn norm_l2(x: &[f64]) -> f64 {
    let mut m = 0.0f64;
    for &v in x {
        m = m.max(v.abs());
    }
    if m == 0.0 {
        // `f64::max` ignores NaN operands, so an all-NaN vector reaches
        // here with m == 0; the norm must propagate the NaN, not mask it.
        return if x.iter().any(|v| v.is_nan()) {
            f64::NAN
        } else {
            0.0
        };
    }
    if !m.is_finite() {
        return m;
    }
    let inv = 1.0 / m;
    let mut acc = NeumaierSum::new();
    for &v in x {
        let s = v * inv;
        acc.add(s * s);
    }
    m * acc.value().sqrt()
}

/// Max norm `max |x_i|`.
pub fn norm_linf(x: &[f64]) -> f64 {
    x.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pythagoras() {
        assert_eq!(norm_l2(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn l1_and_linf() {
        let x = [1.0, -2.0, 3.0];
        assert_eq!(norm_l1(&x), 6.0);
        assert_eq!(norm_linf(&x), 3.0);
    }

    #[test]
    fn empty_norms_are_zero() {
        assert_eq!(norm_l1(&[]), 0.0);
        assert_eq!(norm_l2(&[]), 0.0);
        assert_eq!(norm_linf(&[]), 0.0);
    }

    #[test]
    fn l2_does_not_overflow_on_huge_entries() {
        let x = [1e300, 1e300];
        let n = norm_l2(&x);
        assert!(n.is_finite());
        assert!((n - 1e300 * std::f64::consts::SQRT_2).abs() / n < 1e-15);
    }

    #[test]
    fn l2_does_not_underflow_on_tiny_entries() {
        let x = [1e-300, 1e-300];
        let n = norm_l2(&x);
        assert!(n > 0.0);
        assert!((n - 1e-300 * std::f64::consts::SQRT_2).abs() / n < 1e-15);
    }

    #[test]
    fn infinity_propagates() {
        assert_eq!(norm_l2(&[f64::INFINITY, 1.0]), f64::INFINITY);
    }

    #[test]
    fn nan_propagates_even_when_max_ignores_it() {
        // max-scaling sees m == 0 for an all-NaN vector; the norm must
        // still report NaN so non-finite guardrails can trip on it.
        assert!(norm_l2(&[f64::NAN, f64::NAN]).is_nan());
        assert!(norm_l2(&[0.0, f64::NAN]).is_nan());
        assert!(norm_l2(&[1.0, f64::NAN]).is_nan());
    }
}
