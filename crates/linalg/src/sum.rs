//! Compensated (Neumaier) summation.
//!
//! The eigenvector entries computed by the solver are relative
//! concentrations spanning many orders of magnitude (paper Figure 1 plots
//! them through a sudden phase transition), and the stopping criterion is a
//! 2-norm residual down to `10⁻¹⁵`. Plain recursive summation of `2^25`
//! terms loses enough digits to distort both; every reduction in the
//! workspace therefore funnels through the Neumaier-compensated kernels
//! below.

/// A running Neumaier-compensated sum.
///
/// ```
/// use qs_linalg::NeumaierSum;
/// let mut s = NeumaierSum::new();
/// s.add(1e100);
/// s.add(1.0);
/// s.add(-1e100);
/// assert_eq!(s.value(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct NeumaierSum {
    sum: f64,
    comp: f64,
}

impl NeumaierSum {
    /// A fresh accumulator at zero.
    #[inline]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one term.
    #[inline(always)]
    pub fn add(&mut self, x: f64) {
        let t = self.sum + x;
        self.comp += if self.sum.abs() >= x.abs() {
            (self.sum - t) + x
        } else {
            (x - t) + self.sum
        };
        self.sum = t;
    }

    /// The compensated value of the sum so far.
    #[inline(always)]
    pub fn value(&self) -> f64 {
        self.sum + self.comp
    }

    /// Merge another accumulator into this one (used by parallel
    /// reductions: partial sums per thread, merged at the join).
    #[inline]
    pub fn merge(&mut self, other: &NeumaierSum) {
        self.add(other.sum);
        self.add(other.comp);
    }
}

/// Compensated sum of a slice.
pub fn sum(x: &[f64]) -> f64 {
    let mut acc = NeumaierSum::new();
    for &v in x {
        acc.add(v);
    }
    acc.value()
}

/// Compensated dot product `xᵀy`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    let mut acc = NeumaierSum::new();
    for (&a, &b) in x.iter().zip(y) {
        acc.add(a * b);
    }
    acc.value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancellation_survives() {
        // Classic Neumaier test case: naive summation returns 0.
        assert_eq!(sum(&[1.0, 1e100, 1.0, -1e100]), 2.0);
    }

    #[test]
    fn matches_exact_rational_case() {
        let x: Vec<f64> = (1..=1000).map(|i| 1.0 / i as f64).collect();
        let forward = sum(&x);
        let mut backward = NeumaierSum::new();
        for &v in x.iter().rev() {
            backward.add(v);
        }
        // Compensated sums are order-insensitive to ~1 ulp.
        assert!((forward - backward.value()).abs() < 1e-15);
    }

    #[test]
    fn dot_simple() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..1000)
            .map(|i| ((i * 37) % 101) as f64 * 1e-3 - 0.05)
            .collect();
        let total = sum(&xs);
        let mut a = NeumaierSum::new();
        let mut b = NeumaierSum::new();
        for &v in &xs[..500] {
            a.add(v);
        }
        for &v in &xs[500..] {
            b.add(v);
        }
        a.merge(&b);
        assert!((a.value() - total).abs() < 1e-15);
    }

    #[test]
    fn empty_sum_is_zero() {
        assert_eq!(sum(&[]), 0.0);
    }
}
