//! BLAS-1 style vector kernels.
//!
//! Simple loops the compiler auto-vectorises; all length checks are explicit
//! asserts so a mismatch fails loudly rather than truncating silently.

/// `y ← y + a·x`.
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// `x ← a·x`.
#[inline]
pub fn scale(a: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= a;
    }
}

/// Elementwise product `y ← d ∘ y` (application of a diagonal matrix, the
/// `F` half of `W = Q·F`).
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn apply_diagonal(d: &[f64], y: &mut [f64]) {
    assert_eq!(d.len(), y.len(), "apply_diagonal: length mismatch");
    for (yi, &di) in y.iter_mut().zip(d) {
        *yi *= di;
    }
}

/// `out ← x − a·y`, used for residuals `W x̃ − λ̃ x̃`.
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn sub_scaled_into(x: &[f64], a: f64, y: &[f64], out: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "sub_scaled_into: length mismatch");
    assert_eq!(x.len(), out.len(), "sub_scaled_into: length mismatch");
    for ((o, &xi), &yi) in out.iter_mut().zip(x).zip(y) {
        *o = xi - a * yi;
    }
}

/// Normalise `x` to unit L2 norm; returns the original norm.
///
/// Leaves `x` untouched and returns 0 if the norm is 0.
pub fn normalize_l2(x: &mut [f64]) -> f64 {
    let n = crate::norms::norm_l2(x);
    if n > 0.0 {
        scale(1.0 / n, x);
    }
    n
}

/// Normalise `x` so its entries sum to 1 in absolute value (L1); returns the
/// original L1 norm. Concentration vectors in the quasispecies model satisfy
/// `Σ x_i = 1`, so results are reported in this normalisation.
pub fn normalize_l1(x: &mut [f64]) -> f64 {
    let n = crate::norms::norm_l1(x);
    if n > 0.0 {
        scale(1.0 / n, x);
    }
    n
}

/// Flip the global sign so the (first) entry of largest magnitude is
/// positive. The Perron vector is determined only up to sign by eigensolvers;
/// this picks the physically meaningful non-negative orientation.
pub fn orient_positive(x: &mut [f64]) {
    let mut best = 0.0f64;
    let mut sign = 1.0f64;
    for &v in x.iter() {
        if v.abs() > best {
            best = v.abs();
            sign = if v < 0.0 { -1.0 } else { 1.0 };
        }
    }
    if sign < 0.0 {
        scale(-1.0, x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_basic() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn diagonal_application() {
        let d = [2.0, 0.5, -1.0];
        let mut y = [4.0, 4.0, 4.0];
        apply_diagonal(&d, &mut y);
        assert_eq!(y, [8.0, 2.0, -4.0]);
    }

    #[test]
    fn residual_kernel() {
        let wx = [3.0, 6.0];
        let x = [1.0, 2.0];
        let mut r = [0.0, 0.0];
        sub_scaled_into(&wx, 3.0, &x, &mut r);
        assert_eq!(r, [0.0, 0.0]);
    }

    #[test]
    fn l2_normalisation() {
        let mut x = [3.0, 4.0];
        let n = normalize_l2(&mut x);
        assert_eq!(n, 5.0);
        assert!((x[0] - 0.6).abs() < 1e-15 && (x[1] - 0.8).abs() < 1e-15);
    }

    #[test]
    fn l1_normalisation_sums_to_one() {
        let mut x = [0.5, 1.5, 2.0];
        normalize_l1(&mut x);
        let s: f64 = x.iter().sum();
        assert!((s - 1.0).abs() < 1e-15);
    }

    #[test]
    fn zero_vector_normalisation_is_noop() {
        let mut x = [0.0, 0.0];
        assert_eq!(normalize_l2(&mut x), 0.0);
        assert_eq!(normalize_l1(&mut x), 0.0);
        assert_eq!(x, [0.0, 0.0]);
    }

    #[test]
    fn orientation_flips_negative_vectors() {
        let mut x = [-0.1, -0.9, 0.2];
        orient_positive(&mut x);
        assert_eq!(x, [0.1, 0.9, -0.2]);
        // Already positive: unchanged.
        let mut y = [0.1, 0.9];
        orient_positive(&mut y);
        assert_eq!(y, [0.1, 0.9]);
    }
}
