//! Dense linear-algebra substrate for the quasispecies solver workspace.
//!
//! The fast solvers in this workspace are matrix-free, but they still need a
//! small, dependable dense toolbox:
//!
//! * [`sum`](mod@sum) — Neumaier-compensated summation and dot products (the residual
//!   stopping criterion of the power iteration must remain meaningful down to
//!   `τ = 10⁻¹⁵`),
//! * [`vec_ops`] / [`norms`] — BLAS-1 style kernels,
//! * [`dense`] — a row-major dense matrix with matvec/matmul/Kronecker
//!   products, used to materialise small instances for verification and to
//!   host the paper's `Smvp` baseline,
//! * [`lu`] — LU with partial pivoting (verifies the FWHT shift-invert
//!   product against a direct solve),
//! * [`jacobi`] — a cyclic Jacobi eigensolver for small symmetric problems
//!   (the `(ν+1)×(ν+1)` reduced problem of Section 5.1 and the Kronecker
//!   factor problems of Section 5.2),
//! * [`tridiag`] — implicit-shift QL for symmetric tridiagonal matrices
//!   (post-processing of the Lanczos comparator),
//! * [`power`] — dominant eigenpairs of small dense matrices.
//!
//! Everything is `f64`; there is no `unsafe`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dense;
pub mod jacobi;
pub mod lu;
pub mod norms;
pub mod power;
pub mod sum;
pub mod tridiag;
pub mod vec_ops;

pub use dense::DenseMatrix;
pub use jacobi::jacobi_eigen;
pub use lu::Lu;
pub use norms::{norm_l1, norm_l2, norm_linf};
pub use power::{dominant_eigenpair, DominantEigen};
pub use sum::{dot, sum, NeumaierSum};
pub use tridiag::tridiag_eigen;
