//! The linear (Hamming-distance proportional) fitness landscape.

use crate::Landscape;
use serde::{Deserialize, Serialize};

/// The linear landscape of paper Figure 1 (right):
/// `f_i = f0 − (f0 − f_nu)·d_H(i, 0)/ν`.
///
/// Fitness decays linearly with distance from the master sequence; the
/// stationary distribution transitions *smoothly* into the uniform
/// distribution as `p` grows — no error-threshold phenomenon occurs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Linear {
    nu: u32,
    f0: f64,
    f_nu: f64,
}

impl Linear {
    /// Create a linear landscape interpolating from `f0` at the master
    /// sequence to `f_nu` at its complement.
    ///
    /// # Panics
    ///
    /// Panics unless both endpoint fitness values are positive and finite.
    pub fn new(nu: u32, f0: f64, f_nu: f64) -> Self {
        assert!(f0.is_finite() && f0 > 0.0, "f0 must be positive");
        assert!(f_nu.is_finite() && f_nu > 0.0, "f_nu must be positive");
        let _ = qs_bitseq::dimension(nu);
        Linear { nu, f0, f_nu }
    }

    /// Fitness of the master sequence.
    pub fn master_fitness(&self) -> f64 {
        self.f0
    }

    /// Fitness of the all-ones sequence (distance ν).
    pub fn far_fitness(&self) -> f64 {
        self.f_nu
    }
}

impl Landscape for Linear {
    fn nu(&self) -> u32 {
        self.nu
    }

    #[inline(always)]
    fn fitness(&self, i: u64) -> f64 {
        debug_assert!(i < 1 << self.nu);
        let d = i.count_ones() as f64;
        self.f0 - (self.f0 - self.f_nu) * d / self.nu as f64
    }

    fn f_min(&self) -> f64 {
        self.f0.min(self.f_nu)
    }

    fn f_max(&self) -> f64 {
        self.f0.max(self.f_nu)
    }

    fn is_error_class(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_values() {
        let l = Linear::new(4, 2.0, 1.0);
        assert_eq!(l.fitness(0), 2.0);
        assert_eq!(l.fitness(0b1111), 1.0);
        // Distance 2: halfway.
        assert_eq!(l.fitness(0b0101), 1.5);
    }

    #[test]
    fn constant_when_endpoints_equal() {
        let l = Linear::new(6, 3.0, 3.0);
        for i in 0..64 {
            assert_eq!(l.fitness(i), 3.0);
        }
    }

    #[test]
    fn increasing_landscape_allowed() {
        // f_nu > f0 shifts the fittest sequence to the complement.
        let l = Linear::new(3, 1.0, 4.0);
        assert_eq!(l.f_min(), 1.0);
        assert_eq!(l.f_max(), 4.0);
        assert_eq!(l.fitness(0b111), 4.0);
    }

    #[test]
    fn depends_only_on_weight() {
        let l = Linear::new(8, 2.0, 1.0);
        assert!(l.is_error_class());
        assert_eq!(l.fitness(0b0000_0011), l.fitness(0b1100_0000));
    }

    #[test]
    fn serde_round_trip() {
        let l = Linear::new(20, 2.0, 1.0);
        let back: Linear = serde_json::from_str(&serde_json::to_string(&l).unwrap()).unwrap();
        assert_eq!(l, back);
    }
}
