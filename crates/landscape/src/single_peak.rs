//! The single-peak fitness landscape.

use crate::Landscape;
use serde::{Deserialize, Serialize};

/// The single-peak landscape: the master sequence `X_0` has fitness `f0`,
/// every other sequence has fitness `f_rest` (paper Figure 1 left uses
/// `f0 = 2, f_rest = 1`).
///
/// This is the canonical landscape exhibiting the error-threshold
/// phenomenon; the ratio `f0 / f_rest` is the "superiority" of the master
/// sequence and sets `p_max ≈ ln(f0/f_rest)/ν` in the classical
/// approximation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SinglePeak {
    nu: u32,
    f0: f64,
    f_rest: f64,
}

impl SinglePeak {
    /// Create a single-peak landscape.
    ///
    /// # Panics
    ///
    /// Panics unless `f0` and `f_rest` are positive and finite.
    pub fn new(nu: u32, f0: f64, f_rest: f64) -> Self {
        assert!(f0.is_finite() && f0 > 0.0, "f0 must be positive");
        assert!(
            f_rest.is_finite() && f_rest > 0.0,
            "f_rest must be positive"
        );
        let _ = qs_bitseq::dimension(nu); // range check
        SinglePeak { nu, f0, f_rest }
    }

    /// Fitness of the master sequence.
    pub fn peak(&self) -> f64 {
        self.f0
    }

    /// Fitness of every non-master sequence.
    pub fn background(&self) -> f64 {
        self.f_rest
    }

    /// Superiority `σ = f0 / f_rest` of the master sequence.
    pub fn superiority(&self) -> f64 {
        self.f0 / self.f_rest
    }
}

impl Landscape for SinglePeak {
    fn nu(&self) -> u32 {
        self.nu
    }

    #[inline(always)]
    fn fitness(&self, i: u64) -> f64 {
        debug_assert!(i < 1 << self.nu);
        if i == 0 {
            self.f0
        } else {
            self.f_rest
        }
    }

    fn f_min(&self) -> f64 {
        self.f0.min(self.f_rest)
    }

    fn f_max(&self) -> f64 {
        self.f0.max(self.f_rest)
    }

    fn is_error_class(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values() {
        let l = SinglePeak::new(3, 2.0, 1.0);
        assert_eq!(l.fitness(0), 2.0);
        for i in 1..8 {
            assert_eq!(l.fitness(i), 1.0);
        }
        assert_eq!(l.f_min(), 1.0);
        assert_eq!(l.f_max(), 2.0);
        assert_eq!(l.superiority(), 2.0);
    }

    #[test]
    fn degenerate_peak_below_background() {
        let l = SinglePeak::new(3, 0.5, 1.0);
        assert_eq!(l.f_min(), 0.5);
        assert_eq!(l.f_max(), 1.0);
    }

    #[test]
    #[should_panic(expected = "f0 must be positive")]
    fn rejects_nonpositive_peak() {
        let _ = SinglePeak::new(3, 0.0, 1.0);
    }

    #[test]
    fn serde_round_trip() {
        let l = SinglePeak::new(10, 2.0, 1.0);
        let json = serde_json::to_string(&l).unwrap();
        let back: SinglePeak = serde_json::from_str(&json).unwrap();
        assert_eq!(l, back);
    }
}
