//! Fitness landscapes `F = diag(f_0, …, f_{N-1})` for the quasispecies model.
//!
//! The fitness value `f_i > 0` describes the replication rate ("constitution")
//! of the molecular species `X_i`. The paper's solvers make *no* assumption on
//! `F` beyond diagonality and positivity, but several structured families
//! matter for the evaluation and for the Section 5 specialisations:
//!
//! * [`SinglePeak`] — the classic landscape `f_0 = σ₀, f_{i≠0} = 1` showing
//!   the error-threshold phenomenon (paper Figure 1, left),
//! * [`Linear`] — `f_i = f_0 − (f_0 − f_ν)·d_H(i,0)/ν`, a smooth landscape
//!   without an error threshold (paper Figure 1, right),
//! * [`Random`] — the evaluation landscape of paper Eq. 13:
//!   `f_0 = c`, `f_i = σ·(η_i + 0.5)` with `η_i ~ U[0,1]`,
//! * [`ErrorClass`] — any landscape of the form `f_i = ϕ(d_H(i,0))`
//!   (Section 5.1's exactly reducible family),
//! * [`Kronecker`] — landscapes with diagonal Kronecker-factor structure
//!   `F = ⊗ F_{G_i}` (Section 5.2's decomposable family),
//! * [`Multiplicative`] — per-site independent fitness factors (the
//!   population-genetics classic; a one-bit-factor Kronecker landscape),
//! * [`Nk`] — Kauffman NK landscapes with tunable epistasis, for rugged
//!   "no structural assumption" instances,
//! * [`Tabulated`] — an arbitrary positive table of `N` values.
//!
//! All types implement the [`Landscape`] trait, which exposes per-sequence
//! fitness lookup, cheap `f_min`/`f_max` bounds (needed for the paper's
//! spectral shift `µ = (1−2p)^ν·f_min`), and materialisation into a dense
//! diagonal.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error_class;
mod kronecker;
mod linear;
mod multiplicative;
mod nk;
mod random;
mod single_peak;
mod tabulated;

pub use error_class::ErrorClass;
pub use kronecker::Kronecker;
pub use linear::Linear;
pub use multiplicative::Multiplicative;
pub use nk::Nk;
pub use random::Random;
pub use single_peak::SinglePeak;
pub use tabulated::Tabulated;

/// A positive diagonal fitness landscape over the sequence space `{0,1}^ν`.
///
/// Implementations must guarantee `fitness(i) > 0` for all `i < 2^ν`
/// (`W = Q·F` must satisfy the Perron–Frobenius conditions).
pub trait Landscape: Send + Sync {
    /// Chain length `ν`.
    fn nu(&self) -> u32;

    /// Fitness `f_i` of sequence `i`.
    ///
    /// Implementations may panic for `i ≥ 2^ν`.
    fn fitness(&self, i: u64) -> f64;

    /// Dimension `N = 2^ν` of the landscape.
    fn len(&self) -> usize {
        qs_bitseq::dimension(self.nu())
    }

    /// Landscapes are never empty.
    fn is_empty(&self) -> bool {
        false
    }

    /// Smallest fitness value `f_min` (enters the spectral shift
    /// `µ = (1−2p)^ν·f_min`). The default scans all `N` values; structured
    /// landscapes override with O(1)/O(ν) versions.
    fn f_min(&self) -> f64 {
        (0..self.len() as u64)
            .map(|i| self.fitness(i))
            .fold(f64::INFINITY, f64::min)
    }

    /// Largest fitness value `f_max` (upper bound for `λ₀ ≤ ‖W‖₁ ≤ f_max`).
    fn f_max(&self) -> f64 {
        (0..self.len() as u64)
            .map(|i| self.fitness(i))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Materialise `diag(F)` into a dense vector.
    fn materialize(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.len()];
        self.materialize_into(&mut out);
        out
    }

    /// Materialise `diag(F)` into a caller-provided buffer.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.len()`.
    fn materialize_into(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.len(), "materialize_into: length mismatch");
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.fitness(i as u64);
        }
    }

    /// Is this an error-class landscape (`f_i` depends only on
    /// `d_H(i, 0)`)? Structured types answer in O(1); the default checks all
    /// sequences against the class representative.
    fn is_error_class(&self) -> bool {
        let nu = self.nu();
        (0..self.len() as u64).all(|i| {
            let k = i.count_ones();
            let rep = qs_bitseq::representative(k.min(nu));
            (self.fitness(i) - self.fitness(rep)).abs() <= 1e-15 * self.fitness(rep).abs()
        })
    }
}

/// Blanket implementation so `&L`, `Box<L>`, `Arc<L>` etc. can be passed
/// wherever a landscape is expected.
impl<L: Landscape + ?Sized> Landscape for &L {
    fn nu(&self) -> u32 {
        (**self).nu()
    }
    fn fitness(&self, i: u64) -> f64 {
        (**self).fitness(i)
    }
    fn f_min(&self) -> f64 {
        (**self).f_min()
    }
    fn f_max(&self) -> f64 {
        (**self).f_max()
    }
    fn is_error_class(&self) -> bool {
        (**self).is_error_class()
    }
}

/// Validate the positivity invariant of a landscape; returns the offending
/// index of the first non-positive or non-finite fitness value, if any.
///
/// Intended for constructors of user-supplied tables and for property tests.
pub fn validate<L: Landscape + ?Sized>(landscape: &L) -> Result<(), u64> {
    for i in 0..landscape.len() as u64 {
        let f = landscape.fitness(i);
        if !(f.is_finite() && f > 0.0) {
            return Err(i);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_defaults_work_through_references() {
        let l = SinglePeak::new(4, 2.0, 1.0);
        let r: &dyn Landscape = &l;
        assert_eq!(r.len(), 16);
        assert_eq!(r.f_min(), 1.0);
        assert_eq!(r.f_max(), 2.0);
        assert!(r.is_error_class());
        assert!(validate(r).is_ok());
    }

    #[test]
    fn materialize_matches_pointwise() {
        let l = Linear::new(5, 2.0, 1.0);
        let v = l.materialize();
        for (i, &fi) in v.iter().enumerate() {
            assert_eq!(fi, l.fitness(i as u64));
        }
    }
}
