//! Kauffman NK landscapes: rugged fitness with tunable epistasis.
//!
//! The paper stresses that its solver needs *no* structural assumption on
//! `F` ("We partly use randomly generated landscapes to illustrate the
//! generality of our results"). The NK model is the standard generator of
//! realistically rugged landscapes in evolutionary biology: site `s`
//! contributes a random value that depends on its own state and the state
//! of its `K` neighbouring sites (circularly), so `K = 0` is additive and
//! smooth while `K = ν−1` is maximally epistatic (uncorrelated ruggedness).
//! Fitness here is `1 + mean contribution`, keeping values positive as the
//! quasispecies model requires.

use crate::Landscape;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;

/// A Kauffman NK fitness landscape over `{0,1}^ν`.
#[derive(Debug, Clone)]
pub struct Nk {
    nu: u32,
    k: u32,
    /// `tables[s][pattern]`: contribution of site `s` when the `K+1` bits
    /// `(s, s+1, …, s+K) mod ν` spell `pattern` (site `s` is the
    /// lowest-order bit of the pattern).
    tables: Vec<Vec<f64>>,
    seed: u64,
}

impl Nk {
    /// Draw an NK landscape with `K = k` epistatic neighbours per site.
    ///
    /// # Panics
    ///
    /// Panics unless `k < ν` and the contribution tables fit memory
    /// (`ν·2^{K+1}` values).
    pub fn new(nu: u32, k: u32, seed: u64) -> Self {
        let _ = qs_bitseq::dimension(nu);
        assert!(nu >= 1, "chain length must be at least 1");
        assert!(k < nu, "K must be smaller than the chain length");
        assert!(k <= 24, "K = {k} tables would not fit memory");
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let table_len = 1usize << (k + 1);
        let tables = (0..nu)
            .map(|_| (0..table_len).map(|_| rng.random::<f64>()).collect())
            .collect();
        Nk {
            nu,
            k,
            tables,
            seed,
        }
    }

    /// The epistasis parameter `K`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The seed the tables were drawn from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The neighbourhood pattern of site `s` in sequence `i`: bits
    /// `(s, s+1, …, s+K) mod ν`, packed LSB-first.
    #[inline]
    fn pattern(&self, i: u64, s: u32) -> usize {
        let mut pat = 0usize;
        for j in 0..=self.k {
            let site = (s + j) % self.nu;
            pat |= ((i >> site & 1) as usize) << j;
        }
        pat
    }
}

impl Landscape for Nk {
    fn nu(&self) -> u32 {
        self.nu
    }

    fn fitness(&self, i: u64) -> f64 {
        debug_assert!(i < 1 << self.nu);
        let mut acc = 0.0;
        for s in 0..self.nu {
            acc += self.tables[s as usize][self.pattern(i, s)];
        }
        1.0 + acc / self.nu as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_positive_and_bounded() {
        let l = Nk::new(8, 3, 42);
        for i in 0..256u64 {
            let f = l.fitness(i);
            assert!(f > 1.0 && f < 2.0, "f_{i} = {f}");
        }
        assert!(crate::validate(&l).is_ok());
    }

    #[test]
    fn reproducible_from_seed() {
        let a = Nk::new(6, 2, 7);
        let b = Nk::new(6, 2, 7);
        for i in 0..64u64 {
            assert_eq!(a.fitness(i), b.fitness(i));
        }
        let c = Nk::new(6, 2, 8);
        assert!((0..64u64).any(|i| a.fitness(i) != c.fitness(i)));
    }

    #[test]
    fn k_zero_is_additive() {
        // K = 0: flipping one bit changes exactly one site contribution,
        // so fitness differences decompose additively.
        let l = Nk::new(6, 0, 3);
        for s in 0..6u32 {
            let delta_at_zero = l.fitness(1 << s) - l.fitness(0);
            // The same flip on a different background gives the same delta.
            let bg = 0b101010 & !(1 << s);
            let delta_at_bg = l.fitness(bg | 1 << s) - l.fitness(bg);
            assert!(
                (delta_at_zero - delta_at_bg).abs() < 1e-14,
                "site {s} not additive under K = 0"
            );
        }
    }

    #[test]
    fn larger_k_is_more_rugged() {
        // Ruggedness proxy: count local optima (no 1-flip neighbour is
        // fitter). Expect (statistically) more optima at higher K.
        let count_optima = |l: &Nk| {
            let n = 1u64 << 8;
            (0..n)
                .filter(|&i| (0..8u32).all(|s| l.fitness(i ^ (1 << s)) <= l.fitness(i)))
                .count()
        };
        // Average over seeds to keep the assertion robust.
        let (mut smooth, mut rugged) = (0usize, 0usize);
        for seed in 0..5u64 {
            smooth += count_optima(&Nk::new(8, 0, seed));
            rugged += count_optima(&Nk::new(8, 6, seed));
        }
        assert!(
            rugged > smooth,
            "K = 6 should have more local optima ({rugged}) than K = 0 ({smooth})"
        );
    }

    #[test]
    fn pattern_wraps_circularly() {
        let l = Nk::new(4, 1, 0);
        // Site 3's neighbourhood is (3, 0): pattern bit 0 = site 3, bit 1 = site 0.
        assert_eq!(l.pattern(0b1000, 3), 0b01);
        assert_eq!(l.pattern(0b0001, 3), 0b10);
        assert_eq!(l.pattern(0b1001, 3), 0b11);
    }

    #[test]
    #[should_panic(expected = "smaller than the chain length")]
    fn rejects_k_too_large() {
        let _ = Nk::new(4, 4, 0);
    }
}
