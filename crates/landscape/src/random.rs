//! The random fitness landscape of paper Eq. 13.

use crate::Landscape;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;

/// The random landscape used throughout the paper's evaluation (Eq. 13):
///
/// ```text
/// f_0 = c,   f_i = σ·(η_i + 0.5),   η_i ~ U[0, 1)   for i ≥ 1,
/// ```
///
/// with `c > 0` and `σ ∈ (0, c/2)` so the master sequence stays the fittest.
/// Figure 3 uses `c = 5, σ = 1`. The landscape is materialised eagerly (an
/// unstructured landscape has `N` degrees of freedom and "all its N values
/// have to be stored", Section 3) and is fully reproducible from the seed.
#[derive(Debug, Clone)]
pub struct Random {
    nu: u32,
    values: Vec<f64>,
    f_min: f64,
    f_max: f64,
    seed: u64,
}

impl Random {
    /// Draw a random landscape with the paper's parameters.
    ///
    /// # Panics
    ///
    /// Panics unless `c > 0` and `0 < sigma < c/2` (the paper's stated
    /// parameter domain, which guarantees `f_i < c` for `i ≥ 1`).
    pub fn new(nu: u32, c: f64, sigma: f64, seed: u64) -> Self {
        assert!(c.is_finite() && c > 0.0, "c must be positive");
        assert!(
            sigma.is_finite() && sigma > 0.0 && sigma < c / 2.0,
            "sigma must lie in (0, c/2)"
        );
        let n = qs_bitseq::dimension(nu);
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let mut values = Vec::with_capacity(n);
        values.push(c);
        let mut f_min = c;
        let mut f_max = c;
        for _ in 1..n {
            let f = sigma * (rng.random::<f64>() + 0.5);
            f_min = f_min.min(f);
            f_max = f_max.max(f);
            values.push(f);
        }
        Random {
            nu,
            values,
            f_min,
            f_max,
            seed,
        }
    }

    /// The seed this landscape was drawn from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Borrow the materialised fitness table.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

impl Landscape for Random {
    fn nu(&self) -> u32 {
        self.nu
    }

    #[inline(always)]
    fn fitness(&self, i: u64) -> f64 {
        self.values[i as usize]
    }

    fn f_min(&self) -> f64 {
        self.f_min
    }

    fn f_max(&self) -> f64 {
        self.f_max
    }

    fn materialize(&self) -> Vec<f64> {
        self.values.clone()
    }

    fn is_error_class(&self) -> bool {
        // Random landscapes are (almost surely) unstructured; answer without
        // the O(N) scan. ν = 1 is the degenerate exception handled exactly.
        self.nu == 1 && {
            let rep = self.values[1];
            (self.values[1] - rep).abs() == 0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn master_gets_c_and_rest_in_band() {
        let l = Random::new(8, 5.0, 1.0, 42);
        assert_eq!(l.fitness(0), 5.0);
        for i in 1..l.len() as u64 {
            let f = l.fitness(i);
            assert!((0.5..1.5).contains(&f), "f_{i} = {f} out of σ·[0.5, 1.5)");
        }
    }

    #[test]
    fn reproducible_from_seed() {
        let a = Random::new(6, 5.0, 1.0, 7);
        let b = Random::new(6, 5.0, 1.0, 7);
        assert_eq!(a.values(), b.values());
        let c = Random::new(6, 5.0, 1.0, 8);
        assert_ne!(a.values(), c.values());
    }

    #[test]
    fn bounds_are_tight() {
        let l = Random::new(10, 5.0, 1.0, 1);
        let v = l.materialize();
        let min = v.iter().fold(f64::INFINITY, |m, &x| m.min(x));
        let max = v.iter().fold(f64::NEG_INFINITY, |m, &x| m.max(x));
        assert_eq!(l.f_min(), min);
        assert_eq!(l.f_max(), max);
        assert_eq!(l.f_max(), 5.0, "master must dominate when σ < c/2");
    }

    #[test]
    fn all_values_positive() {
        let l = Random::new(12, 5.0, 1.0, 99);
        assert!(crate::validate(&l).is_ok());
    }

    #[test]
    #[should_panic(expected = "sigma must lie in (0, c/2)")]
    fn rejects_sigma_out_of_domain() {
        let _ = Random::new(4, 5.0, 2.5, 0);
    }

    #[test]
    fn not_error_class() {
        let l = Random::new(6, 5.0, 1.0, 3);
        assert!(!l.is_error_class());
    }
}
