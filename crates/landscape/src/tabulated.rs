//! Arbitrary tabulated fitness landscapes.

use crate::Landscape;
use serde::{Deserialize, Serialize};

/// A fully general landscape: one positive fitness value per sequence,
/// stored as a table of length `N = 2^ν`.
///
/// This is the "no special assumptions" case the paper's Fmmp solver is
/// designed for — `F` is an arbitrary positive diagonal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tabulated {
    nu: u32,
    values: Vec<f64>,
}

impl Tabulated {
    /// Create from an explicit table.
    ///
    /// # Panics
    ///
    /// Panics unless the length is a power of two ≥ 2 and every value is
    /// positive and finite.
    pub fn new(values: Vec<f64>) -> Self {
        assert!(
            values.len().is_power_of_two() && values.len() >= 2,
            "table length must be 2^ν with ν ≥ 1"
        );
        assert!(
            values.iter().all(|f| f.is_finite() && *f > 0.0),
            "all fitness values must be positive and finite"
        );
        let nu = values.len().trailing_zeros();
        Tabulated { nu, values }
    }

    /// Create from a function of the sequence index.
    pub fn from_fn(nu: u32, f: impl Fn(u64) -> f64) -> Self {
        let n = qs_bitseq::dimension(nu);
        Self::new((0..n as u64).map(f).collect())
    }

    /// Snapshot any landscape into a table (useful for perturbation and
    /// serialisation).
    pub fn from_landscape<L: Landscape + ?Sized>(l: &L) -> Self {
        Self::new(l.materialize())
    }

    /// Borrow the table.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutate one entry (e.g. to break error-class symmetry in tests).
    ///
    /// # Panics
    ///
    /// Panics if the new value is not positive finite.
    pub fn set(&mut self, i: u64, f: f64) {
        assert!(f.is_finite() && f > 0.0, "fitness must be positive");
        self.values[i as usize] = f;
    }
}

impl Landscape for Tabulated {
    fn nu(&self) -> u32 {
        self.nu
    }

    #[inline(always)]
    fn fitness(&self, i: u64) -> f64 {
        self.values[i as usize]
    }

    fn materialize(&self) -> Vec<f64> {
        self.values.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SinglePeak;

    #[test]
    fn from_fn_indexes_correctly() {
        let t = Tabulated::from_fn(3, |i| (i + 1) as f64);
        assert_eq!(t.fitness(0), 1.0);
        assert_eq!(t.fitness(7), 8.0);
        assert_eq!(t.f_min(), 1.0);
        assert_eq!(t.f_max(), 8.0);
    }

    #[test]
    fn snapshot_of_structured_landscape() {
        let sp = SinglePeak::new(4, 2.0, 1.0);
        let t = Tabulated::from_landscape(&sp);
        for i in 0..16u64 {
            assert_eq!(t.fitness(i), sp.fitness(i));
        }
        assert!(t.is_error_class());
    }

    #[test]
    fn set_breaks_error_class_structure() {
        let mut t = Tabulated::from_landscape(&SinglePeak::new(4, 2.0, 1.0));
        t.set(3, 7.0);
        assert!(!t.is_error_class());
    }

    #[test]
    #[should_panic(expected = "2^ν")]
    fn rejects_non_power_of_two() {
        let _ = Tabulated::new(vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nan() {
        let _ = Tabulated::new(vec![1.0, f64::NAN]);
    }

    #[test]
    fn serde_round_trip() {
        let t = Tabulated::new(vec![1.0, 2.0, 3.0, 4.0]);
        let back: Tabulated = serde_json::from_str(&serde_json::to_string(&t).unwrap()).unwrap();
        assert_eq!(t, back);
    }
}
