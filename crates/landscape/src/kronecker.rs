//! Kronecker-product structured fitness landscapes (paper Section 5.2).

use crate::Landscape;
use serde::{Deserialize, Serialize};

/// A fitness landscape with diagonal Kronecker structure
/// `F = ⊗_{t=1}^{g} F_{G_t}` where each diagonal factor `F_{G_t}` has
/// dimension `2^{g_t}` and `Σ g_t = ν` (paper Eq. 18 restricted to diagonal
/// factors — `F` itself must be diagonal).
///
/// Factor `t = 0` addresses the **most significant** `g_0` bits of the
/// sequence index, matching the block convention of the paper's recursion
/// (Eq. 8). The fitness of sequence `i` is the product of the factor values
/// at `i`'s digit groups, so only `Σ 2^{g_t}` values are stored — the
/// memory-reduction benefit Section 5.2 highlights — and landscapes for
/// chain lengths far beyond materialisation (ν = 100) can be represented.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kronecker {
    nu: u32,
    /// Per-factor diagonal values; `factors[t].len() == 2^{g_t}`.
    factors: Vec<Vec<f64>>,
    /// Per-factor bit counts `g_t`.
    bits: Vec<u32>,
}

impl Kronecker {
    /// Create from diagonal factors. Each factor's length must be a power of
    /// two (`2^{g_t}`) and all values must be positive and finite.
    ///
    /// # Panics
    ///
    /// Panics on empty input, non-power-of-two factor lengths, non-positive
    /// values, or `Σ g_t` exceeding the supported chain length.
    pub fn new(factors: Vec<Vec<f64>>) -> Self {
        assert!(!factors.is_empty(), "at least one factor required");
        let mut bits = Vec::with_capacity(factors.len());
        let mut nu = 0u32;
        for (t, f) in factors.iter().enumerate() {
            assert!(
                f.len().is_power_of_two() && f.len() >= 2,
                "factor {t} length {} is not a power of two ≥ 2",
                f.len()
            );
            assert!(
                f.iter().all(|v| v.is_finite() && *v > 0.0),
                "factor {t} contains a non-positive value"
            );
            let g = f.len().trailing_zeros();
            bits.push(g);
            nu += g;
        }
        // The *total* chain length may exceed what is materialisable — that
        // is the whole point of Section 5.2 (ν = 100 factorised) — but each
        // factor must itself be a solvable subproblem, and aggregate
        // queries cap out well before ν = 512.
        assert!(
            nu <= 512,
            "total chain length {nu} exceeds the supported 512"
        );
        Kronecker { nu, factors, bits }
    }

    /// Uniform split: `g` factors of `ν/g` bits each, all using the same
    /// diagonal `factor` (convenience for the paper's ν = 100, g = 4
    /// scenario).
    ///
    /// # Panics
    ///
    /// Panics if `factor.len()` is not a power of two ≥ 2.
    pub fn uniform(g: usize, factor: Vec<f64>) -> Self {
        assert!(g >= 1, "need at least one factor");
        Self::new(vec![factor; g])
    }

    /// Number of Kronecker factors `g`.
    pub fn num_factors(&self) -> usize {
        self.factors.len()
    }

    /// Borrow factor `t`'s diagonal values.
    pub fn factor(&self, t: usize) -> &[f64] {
        &self.factors[t]
    }

    /// Per-factor bit counts `g_t`.
    pub fn factor_bits(&self) -> &[u32] {
        &self.bits
    }

    /// Decompose a sequence index into its per-factor digits (most
    /// significant group first).
    ///
    /// # Panics
    ///
    /// Panics for `ν > 63`, where sequence indices no longer fit `u64`;
    /// use per-factor digit vectors directly in that regime.
    pub fn digits(&self, i: u64) -> Vec<usize> {
        assert!(self.nu <= 63, "indices only address chains of ν ≤ 63");
        let mut shift = self.nu;
        self.bits
            .iter()
            .map(|&g| {
                shift -= g;
                ((i >> shift) & ((1 << g) - 1)) as usize
            })
            .collect()
    }

    /// Total storage in values: `Σ 2^{g_t}` (vs `2^ν` for a table).
    pub fn stored_values(&self) -> usize {
        self.factors.iter().map(Vec::len).sum()
    }
}

impl Landscape for Kronecker {
    fn nu(&self) -> u32 {
        self.nu
    }

    #[inline]
    fn fitness(&self, i: u64) -> f64 {
        assert!(self.nu <= 63, "indices only address chains of ν ≤ 63");
        debug_assert!(i < 1u64 << self.nu);
        let mut shift = self.nu;
        let mut f = 1.0;
        for (vals, &g) in self.factors.iter().zip(&self.bits) {
            shift -= g;
            f *= vals[((i >> shift) & ((1 << g) - 1)) as usize];
        }
        f
    }

    fn f_min(&self) -> f64 {
        // All values are positive, so the min of the product over independent
        // digit groups is the product of per-factor minima.
        self.factors
            .iter()
            .map(|f| f.iter().fold(f64::INFINITY, |m, &v| m.min(v)))
            .product()
    }

    fn f_max(&self) -> f64 {
        self.factors
            .iter()
            .map(|f| f.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v)))
            .product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_explicit_kronecker_product() {
        let l = Kronecker::new(vec![vec![1.0, 2.0], vec![3.0, 4.0, 5.0, 6.0]]);
        assert_eq!(l.nu(), 3);
        // F = diag(1,2) ⊗ diag(3,4,5,6): index = 4·a + b.
        let expect = [3.0, 4.0, 5.0, 6.0, 6.0, 8.0, 10.0, 12.0];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(l.fitness(i as u64), e, "index {i}");
        }
    }

    #[test]
    fn bounds_are_products_of_factor_bounds() {
        let l = Kronecker::new(vec![vec![2.0, 5.0], vec![0.5, 3.0]]);
        assert_eq!(l.f_min(), 1.0);
        assert_eq!(l.f_max(), 15.0);
        // Cross-check against the full scan default.
        let v = l.materialize();
        let min = v.iter().fold(f64::INFINITY, |m, &x| m.min(x));
        let max = v.iter().fold(f64::NEG_INFINITY, |m, &x| m.max(x));
        assert_eq!(l.f_min(), min);
        assert_eq!(l.f_max(), max);
    }

    #[test]
    fn digit_decomposition() {
        let l = Kronecker::new(vec![vec![1.0; 4], vec![1.0; 2], vec![1.0; 8]]);
        assert_eq!(l.nu(), 6);
        // i = 0b ab c def with a..=f bits: factor digits (ab, c, def).
        #[allow(clippy::unusual_byte_groupings)] // grouped by factor, deliberately
        let i = 0b10_1_011u64;
        assert_eq!(l.digits(i), vec![0b10, 0b1, 0b011]);
    }

    #[test]
    fn uniform_constructor() {
        let l = Kronecker::uniform(3, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(l.nu(), 6);
        assert_eq!(l.num_factors(), 3);
        assert_eq!(l.stored_values(), 12);
        assert_eq!(l.fitness(0), 1.0);
        assert_eq!(l.fitness((1 << 6) - 1), 64.0);
    }

    #[test]
    fn storage_is_sum_not_product() {
        let l = Kronecker::uniform(4, vec![1.0; 32]);
        assert_eq!(l.nu(), 20);
        assert_eq!(l.stored_values(), 128); // vs 2^20 for a table
    }

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn rejects_bad_factor_length() {
        let _ = Kronecker::new(vec![vec![1.0, 2.0, 3.0]]);
    }

    #[test]
    #[should_panic(expected = "non-positive")]
    fn rejects_nonpositive_factor() {
        let _ = Kronecker::new(vec![vec![1.0, 0.0]]);
    }

    #[test]
    fn serde_round_trip() {
        let l = Kronecker::new(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        let back: Kronecker = serde_json::from_str(&serde_json::to_string(&l).unwrap()).unwrap();
        assert_eq!(l, back);
    }
}
