//! Error-class (Hamming-distance based) fitness landscapes.

use crate::Landscape;
use serde::{Deserialize, Serialize};

/// A landscape of the form `f_i = ϕ(d_H(i, 0))` — all sequences in the same
/// error class `Γ_k` are equally fit.
///
/// This is the family the pre-existing quasispecies literature is restricted
/// to (paper Section 1.2), and the family for which Section 5.1 reduces the
/// `N×N` eigenproblem *exactly* to a `(ν+1)×(ν+1)` one. The class fitness
/// profile `ϕ` is stored as the `ν+1` values `phi[0..=ν]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorClass {
    nu: u32,
    phi: Vec<f64>,
}

impl ErrorClass {
    /// Create from an explicit class-fitness table `phi[k] = ϕ(k)`.
    ///
    /// # Panics
    ///
    /// Panics unless `phi.len() == ν+1` and all values are positive finite.
    pub fn new(nu: u32, phi: Vec<f64>) -> Self {
        let _ = qs_bitseq::dimension(nu);
        assert_eq!(phi.len(), nu as usize + 1, "phi must have ν+1 entries");
        assert!(
            phi.iter().all(|f| f.is_finite() && *f > 0.0),
            "all class fitness values must be positive"
        );
        ErrorClass { nu, phi }
    }

    /// Create from a function of the error-class index.
    pub fn from_fn(nu: u32, phi: impl Fn(u32) -> f64) -> Self {
        Self::new(nu, (0..=nu).map(phi).collect())
    }

    /// The single-peak landscape as an error-class profile.
    pub fn single_peak(nu: u32, f0: f64, f_rest: f64) -> Self {
        Self::from_fn(nu, |k| if k == 0 { f0 } else { f_rest })
    }

    /// The linear landscape as an error-class profile.
    pub fn linear(nu: u32, f0: f64, f_nu: f64) -> Self {
        Self::from_fn(nu, |k| f0 - (f0 - f_nu) * k as f64 / nu as f64)
    }

    /// Class-fitness table `ϕ(0), …, ϕ(ν)`.
    pub fn phi(&self) -> &[f64] {
        &self.phi
    }
}

impl Landscape for ErrorClass {
    fn nu(&self) -> u32 {
        self.nu
    }

    #[inline(always)]
    fn fitness(&self, i: u64) -> f64 {
        debug_assert!(i < 1 << self.nu);
        self.phi[i.count_ones() as usize]
    }

    fn f_min(&self) -> f64 {
        self.phi.iter().fold(f64::INFINITY, |m, &f| m.min(f))
    }

    fn f_max(&self) -> f64 {
        self.phi.iter().fold(f64::NEG_INFINITY, |m, &f| m.max(f))
    }

    fn is_error_class(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Linear, SinglePeak};

    #[test]
    fn matches_single_peak_type() {
        let ec = ErrorClass::single_peak(5, 2.0, 1.0);
        let sp = SinglePeak::new(5, 2.0, 1.0);
        for i in 0..32u64 {
            assert_eq!(ec.fitness(i), sp.fitness(i));
        }
    }

    #[test]
    fn matches_linear_type() {
        let ec = ErrorClass::linear(6, 2.0, 1.0);
        let lin = Linear::new(6, 2.0, 1.0);
        for i in 0..64u64 {
            assert!((ec.fitness(i) - lin.fitness(i)).abs() < 1e-15);
        }
    }

    #[test]
    fn arbitrary_profile() {
        let ec = ErrorClass::new(3, vec![4.0, 1.0, 3.0, 2.0]);
        assert_eq!(ec.fitness(0b000), 4.0);
        assert_eq!(ec.fitness(0b010), 1.0);
        assert_eq!(ec.fitness(0b011), 3.0);
        assert_eq!(ec.fitness(0b111), 2.0);
        assert_eq!(ec.f_min(), 1.0);
        assert_eq!(ec.f_max(), 4.0);
    }

    #[test]
    #[should_panic(expected = "ν+1 entries")]
    fn rejects_wrong_profile_length() {
        let _ = ErrorClass::new(3, vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_profile() {
        let _ = ErrorClass::new(1, vec![1.0, -2.0]);
    }

    #[test]
    fn serde_round_trip() {
        let ec = ErrorClass::new(2, vec![3.0, 2.0, 1.0]);
        let back: ErrorClass = serde_json::from_str(&serde_json::to_string(&ec).unwrap()).unwrap();
        assert_eq!(ec, back);
    }
}
