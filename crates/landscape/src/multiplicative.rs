//! Multiplicative (per-site independent) fitness landscapes.
//!
//! `f_i = Π_s w_s^{bit_s(i)}`: each mutated site scales fitness by its own
//! factor `w_s`. This is the classical "multiplicative fitness" model of
//! population genetics — and it is exactly a [`crate::Kronecker`]
//! landscape with ν one-bit factors `diag(1, w_s)`, so the Section 5.2
//! machinery solves it at *any* chain length. The type exists to make
//! that special case convenient and self-documenting.

use crate::{Kronecker, Landscape};
use serde::{Deserialize, Serialize};

/// A multiplicative landscape: `f_i = base · Π_{s: bit s of i set} w_s`.
///
/// Site `s` counts from the least significant bit, matching the sequence
/// encoding everywhere else in the workspace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Multiplicative {
    base: f64,
    weights: Vec<f64>,
}

impl Multiplicative {
    /// Create from per-site factors (`weights[s]` multiplies fitness when
    /// site `s` is mutated).
    ///
    /// # Panics
    ///
    /// Panics unless `base` and all weights are positive finite and the
    /// chain length is supported.
    pub fn new(base: f64, weights: Vec<f64>) -> Self {
        assert!(base.is_finite() && base > 0.0, "base must be positive");
        assert!(!weights.is_empty(), "at least one site required");
        let _ = qs_bitseq::dimension(weights.len() as u32);
        assert!(
            weights.iter().all(|w| w.is_finite() && *w > 0.0),
            "site weights must be positive"
        );
        Multiplicative { base, weights }
    }

    /// The classical uniform deleterious model: every mutation multiplies
    /// fitness by `1 − s_coef` (selection coefficient `0 < s_coef < 1`).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < s_coef < 1`.
    pub fn uniform_deleterious(nu: u32, base: f64, s_coef: f64) -> Self {
        assert!(
            s_coef > 0.0 && s_coef < 1.0,
            "selection coefficient must lie in (0, 1)"
        );
        Self::new(base, vec![1.0 - s_coef; nu as usize])
    }

    /// Per-site factors.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Express as a [`Kronecker`] landscape (ν one-bit diagonal factors),
    /// unlocking the factorised §5.2 solver. The base is folded into the
    /// first (most significant) factor.
    pub fn to_kronecker(&self) -> Kronecker {
        let nu = self.weights.len();
        // Factor t addresses the most significant remaining bit, which is
        // site ν−1−t in LSB-first site numbering.
        let mut factors: Vec<Vec<f64>> = (0..nu)
            .map(|t| {
                let s = nu - 1 - t;
                vec![1.0, self.weights[s]]
            })
            .collect();
        for v in &mut factors[0] {
            *v *= self.base;
        }
        Kronecker::new(factors)
    }
}

impl Landscape for Multiplicative {
    fn nu(&self) -> u32 {
        self.weights.len() as u32
    }

    #[inline]
    fn fitness(&self, i: u64) -> f64 {
        debug_assert!(i < 1u64 << self.weights.len());
        let mut f = self.base;
        let mut bits = i;
        while bits != 0 {
            let s = bits.trailing_zeros() as usize;
            f *= self.weights[s];
            bits &= bits - 1;
        }
        f
    }

    fn f_min(&self) -> f64 {
        self.base * self.weights.iter().map(|&w| w.min(1.0)).product::<f64>()
    }

    fn f_max(&self) -> f64 {
        self.base * self.weights.iter().map(|&w| w.max(1.0)).product::<f64>()
    }

    fn is_error_class(&self) -> bool {
        // Only when all site weights coincide.
        self.weights.windows(2).all(|w| w[0] == w[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fitness_products() {
        let l = Multiplicative::new(2.0, vec![0.9, 0.5, 1.5]);
        assert_eq!(l.fitness(0b000), 2.0);
        assert_eq!(l.fitness(0b001), 2.0 * 0.9);
        assert_eq!(l.fitness(0b010), 2.0 * 0.5);
        assert_eq!(l.fitness(0b100), 2.0 * 1.5);
        assert!((l.fitness(0b111) - 2.0 * 0.9 * 0.5 * 1.5).abs() < 1e-15);
    }

    #[test]
    fn bounds() {
        let l = Multiplicative::new(2.0, vec![0.9, 0.5, 1.5]);
        assert!((l.f_min() - 2.0 * 0.9 * 0.5).abs() < 1e-15);
        assert!((l.f_max() - 2.0 * 1.5).abs() < 1e-15);
        // Cross-check against the scan defaults.
        let v = l.materialize();
        let min = v.iter().fold(f64::INFINITY, |m, &x| m.min(x));
        let max = v.iter().fold(f64::NEG_INFINITY, |m, &x| m.max(x));
        assert!((l.f_min() - min).abs() < 1e-15);
        assert!((l.f_max() - max).abs() < 1e-15);
    }

    #[test]
    fn kronecker_conversion_agrees() {
        let l = Multiplicative::new(1.5, vec![0.8, 1.2, 0.6, 1.0]);
        let k = l.to_kronecker();
        assert_eq!(k.nu(), 4);
        for i in 0..16u64 {
            assert!(
                (l.fitness(i) - k.fitness(i)).abs() < 1e-14,
                "sequence {i}: {} vs {}",
                l.fitness(i),
                k.fitness(i)
            );
        }
    }

    #[test]
    fn uniform_deleterious_is_error_class() {
        let l = Multiplicative::uniform_deleterious(6, 2.0, 0.1);
        assert!(l.is_error_class());
        // f_i = 2·0.9^{w(i)}.
        assert!((l.fitness(0b111) - 2.0 * 0.9f64.powi(3)).abs() < 1e-15);
        let mixed = Multiplicative::new(1.0, vec![0.9, 0.8]);
        assert!(!mixed.is_error_class());
    }

    #[test]
    #[should_panic(expected = "must lie in (0, 1)")]
    fn rejects_bad_selection_coefficient() {
        let _ = Multiplicative::uniform_deleterious(4, 1.0, 1.5);
    }

    #[test]
    fn serde_round_trip() {
        let l = Multiplicative::new(2.0, vec![0.9, 1.1]);
        let back: Multiplicative =
            serde_json::from_str(&serde_json::to_string(&l).unwrap()).unwrap();
        assert_eq!(l, back);
    }
}
