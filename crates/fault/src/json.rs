//! A minimal, dependency-free JSON reader for fault-plan files.
//!
//! Supports the full JSON value grammar (objects, arrays, strings with
//! escapes, numbers, booleans, null) with precise byte-offset error
//! reporting. Objects preserve key order as a pair list — plans are tiny,
//! so no hashing is needed.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string, with escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object as an ordered `(key, value)` list.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// A parse failure with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document (trailing whitespace allowed).
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err(&format!("invalid number '{s}'")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are not paired — plans never need
                            // them; map to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_fault_plan_document() {
        let v = parse(
            r#"{"matvec": [{"at": 3, "kind": "nan", "element": 0}],
                "exchange": [{"round": 1, "rank": 2, "action": "drop", "times": 4}]}"#,
        )
        .unwrap();
        let mv = v.get("matvec").unwrap().as_array().unwrap();
        assert_eq!(mv[0].get("at").unwrap().as_u64(), Some(3));
        assert_eq!(mv[0].get("kind").unwrap().as_str(), Some("nan"));
        let ex = v.get("exchange").unwrap().as_array().unwrap();
        assert_eq!(ex[0].get("times").unwrap().as_u64(), Some(4));
    }

    #[test]
    fn parses_scalars_arrays_escapes() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("-1.5e3").unwrap(), Value::Num(-1500.0));
        assert_eq!(
            parse(r#""a\n\"bA""#).unwrap(),
            Value::Str("a\n\"bA".to_string())
        );
        assert_eq!(
            parse("[1, 2]").unwrap(),
            Value::Arr(vec![Value::Num(1.0), Value::Num(2.0)])
        );
        assert_eq!(parse("[]").unwrap(), Value::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Obj(vec![]));
    }

    #[test]
    fn rejects_malformed_documents_with_offsets() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "1 2", "\"unterminated", "tru"] {
            let e = parse(bad).unwrap_err();
            assert!(e.offset <= bad.len(), "offset in range for {bad:?}");
        }
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(parse("3.5").unwrap().as_u64(), None);
        assert_eq!(parse("-2").unwrap().as_u64(), None);
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
    }
}
