//! Deterministic fault injection for the quasispecies solver stack.
//!
//! A [`FaultPlan`] — written by hand, loaded from a JSON file, picked
//! from the canned registry, or generated from a seed — describes two
//! classes of deterministic faults:
//!
//! * **matvec faults** ([`MatvecFault`]): strike chosen matvec indices
//!   of any [`LinearOperator`] wrapped in a [`FaultyOp`], overwriting one
//!   element of the product with NaN/∞, flipping its sign, or perturbing
//!   it multiplicatively;
//! * **exchange faults** ([`ExchangeRule`]): corrupt or drop the
//!   hypercube-exchange messages of a chosen sender rank in the simulated
//!   distributed engine, via [`PlanExchangeFault`] (an
//!   [`qs_distributed::ExchangeFault`] hook for
//!   [`qs_distributed::DistributedFmmp::with_faults`]);
//! * **crash faults** ([`CrashRule`]): kill the whole process. Either
//!   abort at a chosen matvec index (a [`FaultyOp`] calls
//!   [`std::process::abort`] — simulating SIGKILL / power loss
//!   mid-solve), or tear a checkpoint write (the CLI routes
//!   `torn-write-at` into `CheckpointConfig::torn_write_at`, which
//!   writes a truncated snapshot prefix and aborts — simulating power
//!   loss mid-`write(2)`).
//!
//! Everything is counter-based and atomic: the same plan applied to the
//! same solve strikes the same operations, so every failure mode the
//! harness exposes is replayable. The JSON schema:
//!
//! ```json
//! {
//!   "matvec":   [{"at": 3, "every": 10, "element": 0,
//!                 "kind": "nan|inf|sign-flip|perturb", "scale": 1e-3}],
//!   "exchange": [{"round": 0, "rank": 1, "action": "corrupt|drop",
//!                 "times": 4}],
//!   "crash":    [{"at-matvec": 64}, {"torn-write-at": 2}]
//! }
//! ```
//!
//! `every` and `scale` are optional (`every` omitted = strike once;
//! `scale` defaults to `1e-3` and only affects `perturb`). `element` is
//! reduced modulo the operator length so one plan applies to any
//! problem size. An exchange rule is armed from global round `round`
//! onward, strikes only messages sent by `rank`, and expires after
//! `times` strikes (retransmissions count). A crash rule names exactly
//! one of `at-matvec` (0-based matvec index to abort at) or
//! `torn-write-at` (1-based checkpoint-write ordinal to tear).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

use qs_distributed::{ExchangeFault, Tamper};
use qs_matvec::LinearOperator;
use qs_telemetry::Probe;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// What a [`MatvecFault`] does to the struck element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Overwrite with NaN.
    Nan,
    /// Overwrite with +∞.
    Inf,
    /// Negate.
    SignFlip,
    /// Multiply by `1 + scale` (a silent relative error).
    Perturb,
}

impl FaultKind {
    fn parse(s: &str) -> Result<Self, PlanError> {
        match s {
            "nan" => Ok(FaultKind::Nan),
            "inf" => Ok(FaultKind::Inf),
            "sign-flip" => Ok(FaultKind::SignFlip),
            "perturb" => Ok(FaultKind::Perturb),
            other => Err(PlanError::new(format!(
                "unknown matvec fault kind '{other}' (expected nan|inf|sign-flip|perturb)"
            ))),
        }
    }

    /// The JSON spelling of this kind.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Nan => "nan",
            FaultKind::Inf => "inf",
            FaultKind::SignFlip => "sign-flip",
            FaultKind::Perturb => "perturb",
        }
    }
}

/// One deterministic matvec fault rule.
#[derive(Debug, Clone, PartialEq)]
pub struct MatvecFault {
    /// 0-based matvec index of the first strike.
    pub at: u64,
    /// Recurrence period after `at`; `None` strikes exactly once.
    pub every: Option<u64>,
    /// Element index to corrupt (reduced modulo the vector length).
    pub element: usize,
    /// What to do to the element.
    pub kind: FaultKind,
    /// Relative magnitude for [`FaultKind::Perturb`].
    pub scale: f64,
}

impl MatvecFault {
    fn strikes(&self, k: u64) -> bool {
        match self.every {
            None => k == self.at,
            Some(period) => k >= self.at && (k - self.at) % period.max(1) == 0,
        }
    }

    fn apply(&self, y: &mut [f64]) {
        if y.is_empty() {
            return;
        }
        let e = self.element % y.len();
        match self.kind {
            FaultKind::Nan => y[e] = f64::NAN,
            FaultKind::Inf => y[e] = f64::INFINITY,
            FaultKind::SignFlip => y[e] = -y[e],
            FaultKind::Perturb => y[e] *= 1.0 + self.scale,
        }
    }
}

/// What an [`ExchangeRule`] does to a struck message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExchangeAction {
    /// Flip the low mantissa bit of word 0 — detectable by checksum only.
    Corrupt,
    /// Lose the message entirely (sender rank failure).
    Drop,
}

impl ExchangeAction {
    fn parse(s: &str) -> Result<Self, PlanError> {
        match s {
            "corrupt" => Ok(ExchangeAction::Corrupt),
            "drop" => Ok(ExchangeAction::Drop),
            other => Err(PlanError::new(format!(
                "unknown exchange action '{other}' (expected corrupt|drop)"
            ))),
        }
    }

    /// The JSON spelling of this action.
    pub fn label(&self) -> &'static str {
        match self {
            ExchangeAction::Corrupt => "corrupt",
            ExchangeAction::Drop => "drop",
        }
    }
}

/// One deterministic exchange-stage fault rule: armed from global round
/// `round` onward, strikes messages sent by `rank`, expires after
/// `times` strikes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExchangeRule {
    /// First global exchange round the rule is armed in.
    pub round: u64,
    /// Sender rank whose messages are struck.
    pub rank: usize,
    /// Corrupt or drop.
    pub action: ExchangeAction,
    /// Strike budget (retransmissions count).
    pub times: u64,
}

/// One deterministic whole-process crash: the ultimate fault. Both
/// variants kill the process with [`std::process::abort`] (no unwinding,
/// no destructors — as close to SIGKILL as safe code gets), so they are
/// only meaningful in a subprocess harness that inspects the exit status
/// and then resumes from the checkpoint directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashRule {
    /// Abort the process when matvec index `k` (0-based) is applied by a
    /// [`FaultyOp`] — power loss mid-solve.
    AtMatvec(u64),
    /// Tear checkpoint write ordinal `n` (1-based): write a truncated
    /// snapshot prefix, then abort — power loss mid-`write(2)`. Routed
    /// by the harness into `CheckpointConfig::torn_write_at`; a bare
    /// [`FaultyOp`] ignores it.
    TornWriteAt(u64),
}

/// A complete deterministic fault plan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Matvec-level rules, applied by [`FaultyOp`].
    pub matvec: Vec<MatvecFault>,
    /// Exchange-level rules, applied by [`PlanExchangeFault`].
    pub exchange: Vec<ExchangeRule>,
    /// Whole-process crash rules ([`FaultyOp`] aborts on
    /// [`CrashRule::AtMatvec`]; the CLI routes
    /// [`CrashRule::TornWriteAt`] into the checkpoint writer).
    pub crash: Vec<CrashRule>,
}

/// A malformed fault-plan document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError {
    /// What went wrong.
    pub message: String,
}

impl PlanError {
    fn new(message: String) -> Self {
        PlanError { message }
    }
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault plan: {}", self.message)
    }
}

impl std::error::Error for PlanError {}

fn field_u64(obj: &json::Value, key: &str, default: Option<u64>) -> Result<u64, PlanError> {
    match obj.get(key) {
        Some(v) => v
            .as_u64()
            .ok_or_else(|| PlanError::new(format!("'{key}' must be a non-negative integer"))),
        None => default.ok_or_else(|| PlanError::new(format!("missing required field '{key}'"))),
    }
}

impl FaultPlan {
    /// Parse a plan from its JSON document (see the crate docs for the
    /// schema). Unknown top-level or rule fields are rejected, so typos
    /// fail loudly instead of silently injecting nothing.
    pub fn from_json(text: &str) -> Result<FaultPlan, PlanError> {
        let doc = json::parse(text).map_err(|e| PlanError::new(e.to_string()))?;
        let fields = match &doc {
            json::Value::Obj(fields) => fields,
            _ => return Err(PlanError::new("document must be a JSON object".into())),
        };
        let mut plan = FaultPlan::default();
        for (key, value) in fields {
            match key.as_str() {
                "matvec" => {
                    let items = value
                        .as_array()
                        .ok_or_else(|| PlanError::new("'matvec' must be an array".into()))?;
                    for item in items {
                        plan.matvec.push(Self::parse_matvec_rule(item)?);
                    }
                }
                "exchange" => {
                    let items = value
                        .as_array()
                        .ok_or_else(|| PlanError::new("'exchange' must be an array".into()))?;
                    for item in items {
                        plan.exchange.push(Self::parse_exchange_rule(item)?);
                    }
                }
                "crash" => {
                    let items = value
                        .as_array()
                        .ok_or_else(|| PlanError::new("'crash' must be an array".into()))?;
                    for item in items {
                        plan.crash.push(Self::parse_crash_rule(item)?);
                    }
                }
                other => {
                    return Err(PlanError::new(format!("unknown top-level field '{other}'")));
                }
            }
        }
        Ok(plan)
    }

    fn parse_matvec_rule(item: &json::Value) -> Result<MatvecFault, PlanError> {
        if let json::Value::Obj(fields) = item {
            for (key, _) in fields {
                if !matches!(key.as_str(), "at" | "every" | "element" | "kind" | "scale") {
                    return Err(PlanError::new(format!("unknown matvec rule field '{key}'")));
                }
            }
        } else {
            return Err(PlanError::new("matvec rules must be objects".into()));
        }
        let kind = FaultKind::parse(
            item.get("kind")
                .and_then(|v| v.as_str())
                .ok_or_else(|| PlanError::new("missing required field 'kind'".into()))?,
        )?;
        let every = match item.get("every") {
            Some(v) => Some(
                v.as_u64()
                    .filter(|&p| p > 0)
                    .ok_or_else(|| PlanError::new("'every' must be a positive integer".into()))?,
            ),
            None => None,
        };
        let scale = match item.get("scale") {
            Some(v) => v
                .as_f64()
                .filter(|s| s.is_finite())
                .ok_or_else(|| PlanError::new("'scale' must be a finite number".into()))?,
            None => 1e-3,
        };
        Ok(MatvecFault {
            at: field_u64(item, "at", None)?,
            every,
            element: field_u64(item, "element", Some(0))? as usize,
            kind,
            scale,
        })
    }

    fn parse_exchange_rule(item: &json::Value) -> Result<ExchangeRule, PlanError> {
        if let json::Value::Obj(fields) = item {
            for (key, _) in fields {
                if !matches!(key.as_str(), "round" | "rank" | "action" | "times") {
                    return Err(PlanError::new(format!(
                        "unknown exchange rule field '{key}'"
                    )));
                }
            }
        } else {
            return Err(PlanError::new("exchange rules must be objects".into()));
        }
        let action = ExchangeAction::parse(
            item.get("action")
                .and_then(|v| v.as_str())
                .ok_or_else(|| PlanError::new("missing required field 'action'".into()))?,
        )?;
        Ok(ExchangeRule {
            round: field_u64(item, "round", Some(0))?,
            rank: field_u64(item, "rank", None)? as usize,
            action,
            times: field_u64(item, "times", Some(1))?,
        })
    }

    fn parse_crash_rule(item: &json::Value) -> Result<CrashRule, PlanError> {
        let fields = match item {
            json::Value::Obj(fields) => fields,
            _ => return Err(PlanError::new("crash rules must be objects".into())),
        };
        for (key, _) in fields {
            if !matches!(key.as_str(), "at-matvec" | "torn-write-at") {
                return Err(PlanError::new(format!("unknown crash rule field '{key}'")));
            }
        }
        let at_matvec = item.get("at-matvec");
        let torn = item.get("torn-write-at");
        match (at_matvec, torn) {
            (Some(v), None) => Ok(CrashRule::AtMatvec(v.as_u64().ok_or_else(|| {
                PlanError::new("'at-matvec' must be a non-negative integer".into())
            })?)),
            (None, Some(v)) => Ok(CrashRule::TornWriteAt(
                v.as_u64()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| PlanError::new("'torn-write-at' must be a positive integer (checkpoint-write ordinals are 1-based)".into()))?,
            )),
            _ => Err(PlanError::new(
                "a crash rule must name exactly one of 'at-matvec' or 'torn-write-at'".into(),
            )),
        }
    }

    /// Render the plan back to its JSON document form.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"matvec\": [");
        for (i, r) in self.matvec.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{{\"at\": {}, \"element\": {}, \"kind\": \"{}\"",
                r.at,
                r.element,
                r.kind.label()
            ));
            if let Some(every) = r.every {
                s.push_str(&format!(", \"every\": {every}"));
            }
            if r.kind == FaultKind::Perturb {
                s.push_str(&format!(", \"scale\": {}", r.scale));
            }
            s.push('}');
        }
        s.push_str("], \"exchange\": [");
        for (i, r) in self.exchange.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{{\"round\": {}, \"rank\": {}, \"action\": \"{}\", \"times\": {}}}",
                r.round,
                r.rank,
                r.action.label(),
                r.times
            ));
        }
        s.push(']');
        if !self.crash.is_empty() {
            s.push_str(", \"crash\": [");
            for (i, r) in self.crash.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                match r {
                    CrashRule::AtMatvec(k) => s.push_str(&format!("{{\"at-matvec\": {k}}}")),
                    CrashRule::TornWriteAt(n) => {
                        s.push_str(&format!("{{\"torn-write-at\": {n}}}"));
                    }
                }
            }
            s.push(']');
        }
        s.push('}');
        s
    }

    /// Whether the plan has no rules at all.
    pub fn is_empty(&self) -> bool {
        self.matvec.is_empty() && self.exchange.is_empty() && self.crash.is_empty()
    }

    /// The first `at-matvec` crash index in the plan, if any.
    pub fn crash_at_matvec(&self) -> Option<u64> {
        self.crash.iter().find_map(|r| match r {
            CrashRule::AtMatvec(k) => Some(*k),
            _ => None,
        })
    }

    /// The first `torn-write-at` checkpoint-write ordinal in the plan,
    /// if any (1-based; for `CheckpointConfig::torn_write_at`).
    pub fn torn_write_at(&self) -> Option<u64> {
        self.crash.iter().find_map(|r| match r {
            CrashRule::TornWriteAt(n) => Some(*n),
            _ => None,
        })
    }

    // ------------------------------------------------------------------
    // Canned plans: the fault classes the test suite sweeps.

    /// One NaN strike at matvec `at` — a transient soft error the
    /// recovery ladder must heal completely.
    pub fn transient_nan(at: u64) -> FaultPlan {
        FaultPlan {
            matvec: vec![MatvecFault {
                at,
                every: None,
                element: 0,
                kind: FaultKind::Nan,
                scale: 1e-3,
            }],
            ..Default::default()
        }
    }

    /// NaN on every matvec from `at` onward — an unrecoverable operator.
    pub fn permanent_nan(at: u64) -> FaultPlan {
        FaultPlan {
            matvec: vec![MatvecFault {
                at,
                every: Some(1),
                element: 0,
                kind: FaultKind::Nan,
                scale: 1e-3,
            }],
            ..Default::default()
        }
    }

    /// One +∞ strike at matvec `at`.
    pub fn transient_inf(at: u64) -> FaultPlan {
        FaultPlan {
            matvec: vec![MatvecFault {
                at,
                every: None,
                element: 0,
                kind: FaultKind::Inf,
                scale: 1e-3,
            }],
            ..Default::default()
        }
    }

    /// Sign-flip element 0 every `period` matvecs — a persistent bounded
    /// perturbation that stalls convergence without going non-finite.
    pub fn sign_flip_every(period: u64) -> FaultPlan {
        FaultPlan {
            matvec: vec![MatvecFault {
                at: 0,
                every: Some(period.max(1)),
                element: 0,
                kind: FaultKind::SignFlip,
                scale: 1e-3,
            }],
            ..Default::default()
        }
    }

    /// Relative perturbation of element 0 every `period` matvecs.
    pub fn perturb_every(period: u64, scale: f64) -> FaultPlan {
        FaultPlan {
            matvec: vec![MatvecFault {
                at: 0,
                every: Some(period.max(1)),
                element: 0,
                kind: FaultKind::Perturb,
                scale,
            }],
            ..Default::default()
        }
    }

    /// Abort the process at matvec `k` — SIGKILL-grade crash mid-solve.
    /// Only for subprocess harnesses; never put this in [`canned`]
    /// (in-process sweeps would die).
    ///
    /// [`canned`]: FaultPlan::canned
    pub fn crash_at(k: u64) -> FaultPlan {
        FaultPlan {
            crash: vec![CrashRule::AtMatvec(k)],
            ..Default::default()
        }
    }

    /// Tear checkpoint write `n` (1-based): truncated snapshot on disk,
    /// then abort. Only for subprocess harnesses.
    pub fn torn_checkpoint_write(n: u64) -> FaultPlan {
        FaultPlan {
            crash: vec![CrashRule::TornWriteAt(n.max(1))],
            ..Default::default()
        }
    }

    /// Corrupt `times` messages sent by `rank`, starting at exchange
    /// round `round` — healed transparently by checksum + retry.
    pub fn exchange_corrupt(round: u64, rank: usize, times: u64) -> FaultPlan {
        FaultPlan {
            exchange: vec![ExchangeRule {
                round,
                rank,
                action: ExchangeAction::Corrupt,
                times,
            }],
            ..Default::default()
        }
    }

    /// Permanently drop every message sent by `rank` — a failed rank.
    /// The budget is 2^53 (the largest exactly-representable JSON
    /// integer), which no simulation can exhaust.
    pub fn dead_rank(rank: usize) -> FaultPlan {
        FaultPlan {
            exchange: vec![ExchangeRule {
                round: 0,
                rank,
                action: ExchangeAction::Drop,
                times: 1 << 53,
            }],
            ..Default::default()
        }
    }

    /// The canned plan registry the robustness test suite sweeps: every
    /// plan here must leave `solve` with a non-degraded `Ok`, a degraded
    /// `Ok` (valid distribution), or a typed error — never a panic.
    pub fn canned() -> Vec<(&'static str, FaultPlan)> {
        vec![
            ("transient_nan", FaultPlan::transient_nan(3)),
            ("transient_inf", FaultPlan::transient_inf(2)),
            ("permanent_nan", FaultPlan::permanent_nan(0)),
            ("sign_flip_every_2", FaultPlan::sign_flip_every(2)),
            ("perturb_every_3", FaultPlan::perturb_every(3, 0.5)),
            ("exchange_corrupt", FaultPlan::exchange_corrupt(0, 1, 3)),
            ("dead_rank_1", FaultPlan::dead_rank(1)),
        ]
    }

    /// A deterministic pseudo-random plan derived from `seed` via
    /// SplitMix64 — same seed, same plan, no RNG dependency.
    pub fn seeded(seed: u64) -> FaultPlan {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let kinds = [
            FaultKind::Nan,
            FaultKind::Inf,
            FaultKind::SignFlip,
            FaultKind::Perturb,
        ];
        let n_rules = 1 + (next() % 3) as usize;
        let matvec = (0..n_rules)
            .map(|_| {
                let kind = kinds[(next() % 4) as usize];
                MatvecFault {
                    at: next() % 32,
                    every: if next() % 2 == 0 {
                        Some(1 + next() % 8)
                    } else {
                        None
                    },
                    element: (next() % 64) as usize,
                    kind,
                    scale: (1 + next() % 1000) as f64 * 1e-3,
                }
            })
            .collect();
        FaultPlan {
            matvec,
            ..Default::default()
        }
    }
}

/// A [`LinearOperator`] wrapper that injects the matvec rules of a
/// [`FaultPlan`] at deterministic, atomically-counted matvec indices.
///
/// The wrapper is transparent when the plan has no matvec rules, and
/// `Send + Sync` whenever the inner operator is, so it slots into every
/// solver path (including `Box<dyn LinearOperator>` engines).
pub struct FaultyOp<A> {
    inner: A,
    rules: Vec<MatvecFault>,
    crash_at: Option<u64>,
    count: AtomicU64,
}

impl<A> FaultyOp<A> {
    /// Wrap `inner`, injecting `plan`'s matvec rules and arming its
    /// `at-matvec` crash rule, if any (exchange rules are ignored here —
    /// hand those to [`PlanExchangeFault`]; `torn-write-at` rules belong
    /// to the checkpoint writer).
    pub fn new(inner: A, plan: &FaultPlan) -> Self {
        FaultyOp {
            inner,
            rules: plan.matvec.clone(),
            crash_at: plan.crash_at_matvec(),
            count: AtomicU64::new(0),
        }
    }

    /// Matvecs performed so far (== strikes consulted).
    pub fn matvecs(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The wrapped operator.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    fn inject(&self, y: &mut [f64]) {
        let k = self.count.fetch_add(1, Ordering::Relaxed);
        if self.crash_at == Some(k) {
            // SIGKILL-grade: no unwinding, no destructors, no flushing.
            // Whatever checkpoints hit the disk before this are all the
            // resume path gets.
            std::process::abort();
        }
        for rule in &self.rules {
            if rule.strikes(k) {
                rule.apply(y);
            }
        }
    }
}

impl<A: fmt::Debug> fmt::Debug for FaultyOp<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultyOp")
            .field("inner", &self.inner)
            .field("rules", &self.rules.len())
            .field("matvecs", &self.matvecs())
            .finish()
    }
}

impl<A: LinearOperator> LinearOperator for FaultyOp<A> {
    fn len(&self) -> usize {
        self.inner.len()
    }

    fn apply_into(&self, x: &[f64], y: &mut [f64]) {
        self.inner.apply_into(x, y);
        self.inject(y);
    }

    fn apply_in_place(&self, v: &mut [f64]) {
        self.inner.apply_in_place(v);
        self.inject(v);
    }

    fn apply_into_probed(&self, x: &[f64], y: &mut [f64], probe: &mut dyn Probe) {
        self.inner.apply_into_probed(x, y, probe);
        self.inject(y);
    }

    fn apply_in_place_probed(&self, v: &mut [f64], probe: &mut dyn Probe) {
        self.inner.apply_in_place_probed(v, probe);
        self.inject(v);
    }

    fn flops_estimate(&self) -> f64 {
        self.inner.flops_estimate()
    }

    fn apply_batch(&self, slab: &mut [f64]) {
        // Deliberately a per-column loop, NOT `inner.apply_batch`: each
        // column must count as one application against the plan's
        // `after`/`times` budgets, exactly as k separate
        // `apply_in_place` calls would, so fault schedules are
        // independent of whether the caller batches.
        let n = self.len();
        assert!(
            !slab.is_empty() && slab.len() % n == 0,
            "apply_batch: slab must hold a whole number of vectors"
        );
        for v in slab.chunks_exact_mut(n) {
            self.apply_in_place(v);
        }
    }
}

/// The exchange half of a [`FaultPlan`] as an [`ExchangeFault`] hook for
/// [`qs_distributed::DistributedFmmp::with_faults`].
#[derive(Debug)]
pub struct PlanExchangeFault {
    rules: Vec<(ExchangeRule, AtomicU64)>,
}

impl PlanExchangeFault {
    /// Build the hook from `plan`'s exchange rules (matvec rules are
    /// ignored here — hand those to [`FaultyOp`]).
    pub fn new(plan: &FaultPlan) -> Self {
        PlanExchangeFault {
            rules: plan
                .exchange
                .iter()
                .map(|r| (r.clone(), AtomicU64::new(r.times)))
                .collect(),
        }
    }
}

impl ExchangeFault for PlanExchangeFault {
    fn on_send(
        &self,
        round: u64,
        sender: usize,
        _receiver: usize,
        _attempt: u32,
        payload: &mut [f64],
    ) -> Tamper {
        for (rule, budget) in &self.rules {
            if round >= rule.round
                && sender == rule.rank
                && budget
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| b.checked_sub(1))
                    .is_ok()
            {
                match rule.action {
                    ExchangeAction::Corrupt => {
                        if let Some(w) = payload.first_mut() {
                            // Lowest mantissa bit: invisible to value-level
                            // sanity checks, caught only by the checksum.
                            *w = f64::from_bits(w.to_bits() ^ 1);
                        }
                        return Tamper::Corrupt;
                    }
                    ExchangeAction::Drop => return Tamper::Drop,
                }
            }
        }
        Tamper::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The identity operator — makes injected strikes exactly visible.
    struct Identity(usize);

    impl LinearOperator for Identity {
        fn len(&self) -> usize {
            self.0
        }
        fn apply_into(&self, x: &[f64], y: &mut [f64]) {
            y.copy_from_slice(x);
        }
    }

    #[test]
    fn apply_batch_counts_each_column_as_one_application() {
        // A batched apply must strike exactly the columns that k separate
        // in-place applies would: the plan's application counter advances
        // once per column, not once per slab.
        let plan = FaultPlan {
            matvec: vec![
                MatvecFault {
                    at: 1,
                    every: Some(2),
                    element: 2,
                    kind: FaultKind::Perturb,
                    scale: 0.5,
                },
                MatvecFault {
                    at: 3,
                    every: None,
                    element: 0,
                    kind: FaultKind::SignFlip,
                    scale: 0.0,
                },
            ],
            ..Default::default()
        };
        let n = 4;
        let k = 5;
        let base: Vec<f64> = (0..n * k).map(|i| 1.0 + i as f64).collect();

        let solo = FaultyOp::new(Identity(n), &plan);
        let mut want = base.clone();
        for col in want.chunks_exact_mut(n) {
            solo.apply_in_place(col);
        }

        let batched = FaultyOp::new(Identity(n), &plan);
        let mut slab = base;
        batched.apply_batch(&mut slab);

        assert_eq!(want, slab);
        assert_eq!(solo.matvecs(), k as u64);
        assert_eq!(batched.matvecs(), k as u64);
        // The plan actually fired mid-batch: the perturbed/flipped entries
        // differ from the clean identity result.
        assert_ne!(slab, (0..n * k).map(|i| 1.0 + i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn json_round_trip_preserves_the_plan() {
        let plan = FaultPlan {
            matvec: vec![
                MatvecFault {
                    at: 3,
                    every: Some(10),
                    element: 5,
                    kind: FaultKind::Perturb,
                    scale: 0.25,
                },
                MatvecFault {
                    at: 0,
                    every: None,
                    element: 0,
                    kind: FaultKind::Nan,
                    scale: 1e-3,
                },
            ],
            exchange: vec![ExchangeRule {
                round: 2,
                rank: 1,
                action: ExchangeAction::Drop,
                times: 4,
            }],
            ..Default::default()
        };
        let parsed = FaultPlan::from_json(&plan.to_json()).unwrap();
        assert_eq!(parsed.matvec[0], plan.matvec[0]);
        assert_eq!(parsed.exchange, plan.exchange);
        // Round-trip NaN rule: scale is not serialized for non-perturb
        // kinds, so it comes back as the default.
        assert_eq!(parsed.matvec[1].kind, FaultKind::Nan);
        assert_eq!(parsed.matvec[1].at, 0);
    }

    #[test]
    fn plan_parser_rejects_unknown_fields_and_kinds() {
        for bad in [
            r#"{"matvec": [{"at": 1, "kind": "frobnicate"}]}"#,
            r#"{"matvec": [{"at": 1, "kind": "nan", "typo": 3}]}"#,
            r#"{"exchange": [{"rank": 0, "action": "melt"}]}"#,
            r#"{"unknown": []}"#,
            r#"{"matvec": [{"kind": "nan"}]}"#,
            r#"{"matvec": [{"at": 1, "kind": "nan", "every": 0}]}"#,
            r#"[1, 2]"#,
            r#"not json"#,
            // Truncated documents must be a parse error, not a panic.
            r#"{"matvec": [{"at": 1, "#,
            r#"{"crash": [{"at-matvec": "#,
            r#"{"#,
            r#""#,
        ] {
            assert!(FaultPlan::from_json(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn crash_rules_parse_round_trip_and_enforce_exactly_one_key() {
        let plan = FaultPlan::from_json(r#"{"crash": [{"at-matvec": 64}, {"torn-write-at": 2}]}"#)
            .unwrap();
        assert_eq!(
            plan.crash,
            vec![CrashRule::AtMatvec(64), CrashRule::TornWriteAt(2)]
        );
        assert_eq!(plan.crash_at_matvec(), Some(64));
        assert_eq!(plan.torn_write_at(), Some(2));
        assert!(!plan.is_empty());
        assert_eq!(FaultPlan::from_json(&plan.to_json()).unwrap(), plan);

        for bad in [
            // Exactly one of the two keys, typed correctly.
            r#"{"crash": [{}]}"#,
            r#"{"crash": [{"at-matvec": 1, "torn-write-at": 1}]}"#,
            r#"{"crash": [{"at-matvec": -3}]}"#,
            r#"{"crash": [{"at-matvec": "soon"}]}"#,
            r#"{"crash": [{"torn-write-at": 0}]}"#,
            r#"{"crash": [{"when": 5}]}"#,
            r#"{"crash": [5]}"#,
            r#"{"crash": {}}"#,
        ] {
            assert!(FaultPlan::from_json(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn crash_constructors_and_plain_plans_do_not_abort() {
        // A plan whose crash index is never reached must be transparent —
        // this test would die with SIGABRT if arming were wrong.
        let op = FaultyOp::new(Identity(2), &FaultPlan::crash_at(1_000_000));
        let x = vec![1.0, 2.0];
        for _ in 0..10 {
            assert_eq!(op.apply(&x), x);
        }
        // Torn-write rules are inert inside FaultyOp (checkpoint-layer only).
        let op = FaultyOp::new(Identity(2), &FaultPlan::torn_checkpoint_write(1));
        assert_eq!(op.apply(&x), x);
        assert_eq!(FaultPlan::torn_checkpoint_write(0).torn_write_at(), Some(1));
    }

    #[test]
    fn defaults_fill_in_optional_fields() {
        let plan = FaultPlan::from_json(r#"{"matvec": [{"at": 7, "kind": "perturb"}]}"#).unwrap();
        let r = &plan.matvec[0];
        assert_eq!((r.at, r.every, r.element), (7, None, 0));
        assert_eq!(r.scale, 1e-3);
        let plan =
            FaultPlan::from_json(r#"{"exchange": [{"rank": 3, "action": "corrupt"}]}"#).unwrap();
        let r = &plan.exchange[0];
        assert_eq!((r.round, r.rank, r.times), (0, 3, 1));
    }

    #[test]
    fn faulty_op_strikes_exactly_the_planned_matvecs() {
        let plan = FaultPlan::transient_nan(2);
        let op = FaultyOp::new(Identity(4), &plan);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        for k in 0..5u64 {
            let y = op.apply(&x);
            if k == 2 {
                assert!(y[0].is_nan(), "strike at matvec 2");
                assert_eq!(&y[1..], &x[1..], "only element 0 struck");
            } else {
                assert_eq!(y, x, "matvec {k} untouched");
            }
        }
        assert_eq!(op.matvecs(), 5);
    }

    #[test]
    fn recurring_rules_and_element_reduction() {
        let plan = FaultPlan {
            matvec: vec![MatvecFault {
                at: 1,
                every: Some(2),
                element: 7, // reduced mod 4 → 3
                kind: FaultKind::SignFlip,
                scale: 1e-3,
            }],
            ..Default::default()
        };
        let op = FaultyOp::new(Identity(4), &plan);
        let x = vec![1.0; 4];
        let strikes: Vec<bool> = (0..6).map(|_| op.apply(&x)[3] < 0.0).collect();
        assert_eq!(strikes, [false, true, false, true, false, true]);
    }

    #[test]
    fn perturb_is_a_relative_error() {
        let plan = FaultPlan::perturb_every(1, 0.5);
        let op = FaultyOp::new(Identity(2), &plan);
        assert_eq!(op.apply(&[2.0, 1.0]), vec![3.0, 1.0]);
    }

    #[test]
    fn plan_exchange_fault_honours_round_rank_and_budget() {
        let plan = FaultPlan::exchange_corrupt(1, 2, 2);
        let hook = PlanExchangeFault::new(&plan);
        let mut buf = [1.0, 2.0];
        // Wrong round, wrong rank: untouched.
        assert_eq!(hook.on_send(0, 2, 0, 0, &mut buf), Tamper::None);
        assert_eq!(hook.on_send(1, 0, 2, 0, &mut buf), Tamper::None);
        assert_eq!(buf, [1.0, 2.0]);
        // Two budgeted strikes, then exhausted.
        assert_eq!(hook.on_send(1, 2, 0, 0, &mut buf), Tamper::Corrupt);
        assert_ne!(buf[0], 1.0);
        assert_eq!(hook.on_send(2, 2, 3, 0, &mut buf), Tamper::Corrupt);
        assert_eq!(hook.on_send(3, 2, 0, 0, &mut buf), Tamper::None);
    }

    #[test]
    fn corrupt_flips_one_bit_invisible_to_value_checks() {
        let plan = FaultPlan::exchange_corrupt(0, 0, 1);
        let hook = PlanExchangeFault::new(&plan);
        let mut buf = [1.0, 2.0];
        let before = qs_distributed::fnv1a_checksum(&buf);
        assert_eq!(hook.on_send(0, 0, 1, 0, &mut buf), Tamper::Corrupt);
        assert!(buf[0].is_finite() && (buf[0] - 1.0).abs() < 1e-12);
        assert_ne!(qs_distributed::fnv1a_checksum(&buf), before);
    }

    #[test]
    fn dead_rank_plan_drops_forever() {
        let hook = PlanExchangeFault::new(&FaultPlan::dead_rank(1));
        let mut buf = [0.0];
        for round in 0..100 {
            assert_eq!(hook.on_send(round, 1, 0, 0, &mut buf), Tamper::Drop);
            assert_eq!(hook.on_send(round, 0, 1, 0, &mut buf), Tamper::None);
        }
    }

    #[test]
    fn seeded_plans_are_deterministic_and_non_trivial() {
        let a = FaultPlan::seeded(42);
        let b = FaultPlan::seeded(42);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert_ne!(a, FaultPlan::seeded(43));
    }

    #[test]
    fn canned_registry_round_trips_through_json() {
        for (name, plan) in FaultPlan::canned() {
            let back =
                FaultPlan::from_json(&plan.to_json()).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(back, plan, "{name}");
        }
    }
}
